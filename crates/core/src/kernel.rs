//! The columnar batch backend: a network lowered to a flat instruction
//! tape and evaluated column-wise (one operation over a whole batch).
//!
//! [`Plan`](crate::Plan) evaluates one joint sample at a time through a
//! tree of boxed closures — per sample per node it pays virtual dispatch,
//! slot-epoch bookkeeping, and memo probes. The SPRT hot path never wants
//! one sample; it wants a *batch*. A [`Kernel`] is the batch-shaped
//! compilation of the same network:
//!
//! * **Tape**: a post-order walk over the deduplicated DAG emits one
//!   SSA-style instruction per [`NodeId`]. Shared sub-expressions (the
//!   paper's Fig. 8) fall out for free — a node reached twice is lowered
//!   once and both parents read its register.
//! * **Registers**: structure-of-arrays column buffers (`Vec<f64>`,
//!   `Vec<bool>`, or `Vec<T>` for opaque values), one per instruction.
//!   Because emission is post-order, an instruction's destination index is
//!   strictly greater than its sources' — `split_at_mut` gives the
//!   disjoint mutable/shared views without unsafe code.
//! * **Leaves** fill their column from per-sample-index RNGs seeded by the
//!   same SplitMix64 substream derivation as [`ParSampler`]
//!   (`plan::sample_seed`), and instructions consume each sample's RNG in
//!   exactly the order the closure path visits nodes — so a kernel batch
//!   is **bitwise identical** to the closure path, sample for sample.
//! * **Tagged arithmetic** (`+ - * / %`, comparisons, boolean ops, and the
//!   `f64` method lifts) runs as tight monomorphic loops over columns that
//!   the compiler can unroll and vectorize. Untagged `map`/`map2` closures
//!   still lower — they run the closure per element, which keeps the
//!   whole-network fallback rare.
//!
//! Networks containing nodes whose sampling needs `SampleContext`
//! machinery — `flat_map` (fresh memo scope per outer draw),
//! `encapsulate` (forked RNG), `weight_by` (SIR loop), `condition_on`
//! (rejection loop) — do not lower; [`Kernel::lower`] returns `None` and
//! callers keep the closure path. The fallback is per *network*, never per
//! sample, so a network always takes one path and stays reproducible.

use crate::node::{LeafNode, Map2Node, MapNode, NodeId, NodeInfo};
use crate::plan::sample_seed;
use crate::uncertain::{Uncertain, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Rows evaluated per column pass when a caller streams a large batch
/// through [`Kernel::run_into`] in chunks: big enough that per-chunk setup
/// amortizes to nothing, small enough that register columns stay cache-
/// and memory-friendly for thousand-node tapes.
pub(crate) const KERNEL_CHUNK: usize = 4096;

// ---------------------------------------------------------------------------
// Operation tags
// ---------------------------------------------------------------------------

/// A unary `f64 → f64` operation a `map` node advertises to the kernel.
///
/// The `*K` variants carry the scalar a lifted operator captured in its
/// closure (`x + 3.0` is `AddK(3.0)`); `R*K` are the reversed,
/// non-commutative forms (`3.0 - x` is `RsubK(3.0)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum UnOp {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Ln,
    Sin,
    Cos,
    Asin,
    Atan,
    ToRadians,
    ToDegrees,
    AddK(f64),
    SubK(f64),
    RsubK(f64),
    MulK(f64),
    DivK(f64),
    RdivK(f64),
    RemK(f64),
    RremK(f64),
    PowiK(i32),
    PowfK(f64),
    ClampK(f64, f64),
}

impl UnOp {
    /// Fills `out[..n]` with the operation applied to `a[..n]`, one
    /// monomorphic loop per variant.
    fn fill(self, a: &[f64], out: &mut Vec<f64>, n: usize) {
        #[inline]
        fn loop_fill(a: &[f64], out: &mut Vec<f64>, n: usize, f: impl Fn(f64) -> f64) {
            out.clear();
            out.extend(a[..n].iter().map(|&x| f(x)));
        }
        match self {
            UnOp::Neg => loop_fill(a, out, n, |x| -x),
            UnOp::Abs => loop_fill(a, out, n, f64::abs),
            UnOp::Sqrt => loop_fill(a, out, n, f64::sqrt),
            UnOp::Exp => loop_fill(a, out, n, f64::exp),
            UnOp::Ln => loop_fill(a, out, n, f64::ln),
            UnOp::Sin => loop_fill(a, out, n, f64::sin),
            UnOp::Cos => loop_fill(a, out, n, f64::cos),
            UnOp::Asin => loop_fill(a, out, n, f64::asin),
            UnOp::Atan => loop_fill(a, out, n, f64::atan),
            UnOp::ToRadians => loop_fill(a, out, n, f64::to_radians),
            UnOp::ToDegrees => loop_fill(a, out, n, f64::to_degrees),
            UnOp::AddK(k) => loop_fill(a, out, n, |x| x + k),
            UnOp::SubK(k) => loop_fill(a, out, n, |x| x - k),
            UnOp::RsubK(k) => loop_fill(a, out, n, |x| k - x),
            UnOp::MulK(k) => loop_fill(a, out, n, |x| x * k),
            UnOp::DivK(k) => loop_fill(a, out, n, |x| x / k),
            UnOp::RdivK(k) => loop_fill(a, out, n, |x| k / x),
            UnOp::RemK(k) => loop_fill(a, out, n, |x| x % k),
            UnOp::RremK(k) => loop_fill(a, out, n, |x| k % x),
            UnOp::PowiK(k) => loop_fill(a, out, n, |x| x.powi(k)),
            UnOp::PowfK(k) => loop_fill(a, out, n, |x| x.powf(k)),
            UnOp::ClampK(lo, hi) => loop_fill(a, out, n, |x| x.clamp(lo, hi)),
        }
    }
}

/// A binary `f64 × f64 → f64` operation a `map2` node advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Max,
    Min,
    Atan2,
}

impl BinOp {
    fn fill(self, a: &[f64], b: &[f64], out: &mut Vec<f64>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[f64],
            b: &[f64],
            out: &mut Vec<f64>,
            n: usize,
            f: impl Fn(f64, f64) -> f64,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            BinOp::Add => loop_fill(a, b, out, n, |x, y| x + y),
            BinOp::Sub => loop_fill(a, b, out, n, |x, y| x - y),
            BinOp::Mul => loop_fill(a, b, out, n, |x, y| x * y),
            BinOp::Div => loop_fill(a, b, out, n, |x, y| x / y),
            BinOp::Rem => loop_fill(a, b, out, n, |x, y| x % y),
            BinOp::Max => loop_fill(a, b, out, n, f64::max),
            BinOp::Min => loop_fill(a, b, out, n, f64::min),
            BinOp::Atan2 => loop_fill(a, b, out, n, f64::atan2),
        }
    }
}

/// A `f64 × f64 → bool` comparison a lifted operator advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Gt,
    Lt,
    Ge,
    Le,
    Eq,
    Ne,
}

impl CmpOp {
    fn fill(self, a: &[f64], b: &[f64], out: &mut Vec<bool>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[f64],
            b: &[f64],
            out: &mut Vec<bool>,
            n: usize,
            f: impl Fn(f64, f64) -> bool,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            CmpOp::Gt => loop_fill(a, b, out, n, |x, y| x > y),
            CmpOp::Lt => loop_fill(a, b, out, n, |x, y| x < y),
            CmpOp::Ge => loop_fill(a, b, out, n, |x, y| x >= y),
            CmpOp::Le => loop_fill(a, b, out, n, |x, y| x <= y),
            CmpOp::Eq => loop_fill(a, b, out, n, |x, y| x == y),
            CmpOp::Ne => loop_fill(a, b, out, n, |x, y| x != y),
        }
    }
}

/// A `bool × bool → bool` connective a lifted operator advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoolOp {
    And,
    Or,
    Xor,
}

impl BoolOp {
    fn fill(self, a: &[bool], b: &[bool], out: &mut Vec<bool>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[bool],
            b: &[bool],
            out: &mut Vec<bool>,
            n: usize,
            f: impl Fn(bool, bool) -> bool,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            BoolOp::And => loop_fill(a, b, out, n, |x, y| x & y),
            BoolOp::Or => loop_fill(a, b, out, n, |x, y| x | y),
            BoolOp::Xor => loop_fill(a, b, out, n, |x, y| x ^ y),
        }
    }
}

/// What a `map` node means to the kernel, beyond its opaque closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MapTag {
    /// A unary `f64 → f64` operation.
    F64(UnOp),
    /// Boolean negation.
    NotBool,
}

/// What a `map2` node means to the kernel, beyond its opaque closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Map2Tag {
    /// A binary `f64 × f64 → f64` operation.
    F64(BinOp),
    /// A `f64` comparison producing `bool`.
    Cmp(CmpOp),
    /// A boolean connective.
    Bool(BoolOp),
}

/// Tags a generic unary lift when its element type is `f64`. The closure
/// defers `UnOp` construction so scalar captures are only converted for
/// the type the tag is valid for.
pub(crate) fn un_tag_for<T: 'static>(op: impl FnOnce() -> UnOp) -> Option<MapTag> {
    (TypeId::of::<T>() == TypeId::of::<f64>()).then(|| MapTag::F64(op()))
}

/// Tags a generic binary lift when its element type is `f64`.
pub(crate) fn bin_tag_for<T: 'static>(op: BinOp) -> Option<Map2Tag> {
    (TypeId::of::<T>() == TypeId::of::<f64>()).then_some(Map2Tag::F64(op))
}

/// Tags a generic comparison lift when its element type is `f64`.
pub(crate) fn cmp_tag_for<T: 'static>(op: CmpOp) -> Option<Map2Tag> {
    (TypeId::of::<T>() == TypeId::of::<f64>()).then_some(Map2Tag::Cmp(op))
}

// ---------------------------------------------------------------------------
// Register columns
// ---------------------------------------------------------------------------

/// A type-erased register column (`Vec<T>` behind `dyn Any` access).
pub(crate) trait Col: Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Send + 'static> Col for Vec<T> {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Allocates one (empty) column of an instruction's output type.
type ColMaker = Box<dyn Fn() -> Box<dyn Col> + Send + Sync>;

fn col_ref<T: 'static>(c: &dyn Col) -> &Vec<T> {
    c.as_any()
        .downcast_ref()
        .expect("kernel register column has its instruction's output type")
}

fn col_mut<T: 'static>(c: &mut dyn Col) -> &mut Vec<T> {
    c.as_any_mut()
        .downcast_mut()
        .expect("kernel register column has its instruction's output type")
}

/// Splits the register file at an instruction's destination: sources are
/// strictly below it (post-order SSA), so `lo` holds every readable source
/// column and `dst` is the writable destination.
fn dst_and_srcs(regs: &mut [Box<dyn Col>], dst: usize) -> (&mut dyn Col, &[Box<dyn Col>]) {
    let (lo, hi) = regs.split_at_mut(dst);
    (hi[0].as_mut(), lo)
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

/// One tape instruction: computes its destination column from source
/// columns (and, for leaves, the per-sample RNGs) for `n` rows.
pub(crate) trait Instr: Send + Sync {
    fn run(&self, regs: &mut [Box<dyn Col>], rngs: &mut [SmallRng], n: usize);
}

struct FillLeaf<T: Value> {
    node: Arc<LeafNode<T>>,
    dst: usize,
}

impl<T: Value> Instr for FillLeaf<T> {
    fn run(&self, regs: &mut [Box<dyn Col>], rngs: &mut [SmallRng], n: usize) {
        let out = col_mut::<T>(regs[self.dst].as_mut());
        out.clear();
        out.reserve(n);
        for rng in rngs[..n].iter_mut() {
            out.push(self.node.sample_raw(rng));
        }
    }
}

struct FillPoint<T: Value> {
    value: T,
    dst: usize,
}

impl<T: Value> Instr for FillPoint<T> {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let out = col_mut::<T>(regs[self.dst].as_mut());
        out.clear();
        out.extend((0..n).map(|_| self.value.clone()));
    }
}

struct MapOpaque<A: Value, T: Value> {
    node: Arc<MapNode<A, T>>,
    src: usize,
    dst: usize,
}

impl<A: Value, T: Value> Instr for MapOpaque<A, T> {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<A>(srcs[self.src].as_ref());
        let out = col_mut::<T>(dst);
        out.clear();
        out.extend(a[..n].iter().map(|v| self.node.apply(v.clone())));
    }
}

struct Map2Opaque<A: Value, B: Value, T: Value> {
    node: Arc<Map2Node<A, B, T>>,
    a: usize,
    b: usize,
    dst: usize,
}

impl<A: Value, B: Value, T: Value> Instr for Map2Opaque<A, B, T> {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<A>(srcs[self.a].as_ref());
        let b = col_ref::<B>(srcs[self.b].as_ref());
        let out = col_mut::<T>(dst);
        out.clear();
        out.extend(
            a[..n]
                .iter()
                .zip(&b[..n])
                .map(|(x, y)| self.node.apply(x.clone(), y.clone())),
        );
    }
}

struct UnF64 {
    op: UnOp,
    src: usize,
    dst: usize,
}

impl Instr for UnF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.src].as_ref());
        self.op.fill(a, col_mut::<f64>(dst), n);
    }
}

struct BinF64 {
    op: BinOp,
    a: usize,
    b: usize,
    dst: usize,
}

impl Instr for BinF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.a].as_ref());
        let b = col_ref::<f64>(srcs[self.b].as_ref());
        self.op.fill(a, b, col_mut::<f64>(dst), n);
    }
}

struct CmpF64 {
    op: CmpOp,
    a: usize,
    b: usize,
    dst: usize,
}

impl Instr for CmpF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.a].as_ref());
        let b = col_ref::<f64>(srcs[self.b].as_ref());
        self.op.fill(a, b, col_mut::<bool>(dst), n);
    }
}

struct BoolBin {
    op: BoolOp,
    a: usize,
    b: usize,
    dst: usize,
}

impl Instr for BoolBin {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<bool>(srcs[self.a].as_ref());
        let b = col_ref::<bool>(srcs[self.b].as_ref());
        self.op.fill(a, b, col_mut::<bool>(dst), n);
    }
}

struct NotBool {
    src: usize,
    dst: usize,
}

impl Instr for NotBool {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<bool>(srcs[self.src].as_ref());
        let out = col_mut::<bool>(dst);
        out.clear();
        out.extend(a[..n].iter().map(|&x| !x));
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Display metadata for one instruction — what the obs profiler reports.
/// Carried unconditionally (it is a few words per instruction) so lowering
/// is identical with and without the `obs` feature.
#[derive(Debug, Clone)]
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) struct InstrMeta {
    pub(crate) node: NodeId,
    pub(crate) label: String,
    pub(crate) op: &'static str,
}

/// Accumulates the tape during lowering; one register per emitted
/// instruction, allocated in post-order.
#[derive(Default)]
pub(crate) struct KernelBuilder {
    reg_of: HashMap<NodeId, usize>,
    instrs: Vec<Box<dyn Instr>>,
    metas: Vec<InstrMeta>,
    makers: Vec<ColMaker>,
}

impl KernelBuilder {
    /// Whether `id` already has a register (shared sub-expression).
    fn has(&self, id: NodeId) -> bool {
        self.reg_of.contains_key(&id)
    }

    /// The register holding an already-lowered node's column.
    pub(crate) fn reg(&self, id: NodeId) -> usize {
        self.reg_of[&id]
    }

    /// The register the next emitted instruction will write.
    pub(crate) fn next_reg(&self) -> usize {
        self.instrs.len()
    }

    /// Appends an instruction whose destination column holds `T`s.
    pub(crate) fn emit<T: Value>(
        &mut self,
        id: NodeId,
        label: String,
        op: &'static str,
        instr: Box<dyn Instr>,
    ) {
        let dst = self.instrs.len();
        self.reg_of.insert(id, dst);
        self.instrs.push(instr);
        self.metas.push(InstrMeta {
            node: id,
            label,
            op,
        });
        self.makers.push(Box::new(|| Box::new(Vec::<T>::new())));
    }
}

// ---------------------------------------------------------------------------
// Per-node lowering (called from the NodeInfo hooks in node.rs)
// ---------------------------------------------------------------------------

pub(crate) fn lower_leaf<T: Value>(node: Arc<LeafNode<T>>, k: &mut KernelBuilder) {
    let dst = k.next_reg();
    let (id, label) = (node.id(), node.label());
    k.emit::<T>(id, label, "leaf", Box::new(FillLeaf { node, dst }));
}

pub(crate) fn lower_point<T: Value>(id: NodeId, label: String, value: T, k: &mut KernelBuilder) {
    let dst = k.next_reg();
    k.emit::<T>(id, label, "point", Box::new(FillPoint { value, dst }));
}

pub(crate) fn lower_map<A: Value, T: Value>(
    node: Arc<MapNode<A, T>>,
    tag: Option<MapTag>,
    child: NodeId,
    k: &mut KernelBuilder,
) {
    let src = k.reg(child);
    let dst = k.next_reg();
    let (id, label) = (node.id(), node.label());
    match tag {
        Some(MapTag::F64(op))
            if TypeId::of::<A>() == TypeId::of::<f64>()
                && TypeId::of::<T>() == TypeId::of::<f64>() =>
        {
            k.emit::<f64>(id, label, "unary", Box::new(UnF64 { op, src, dst }));
        }
        Some(MapTag::NotBool)
            if TypeId::of::<A>() == TypeId::of::<bool>()
                && TypeId::of::<T>() == TypeId::of::<bool>() =>
        {
            k.emit::<bool>(id, label, "not", Box::new(NotBool { src, dst }));
        }
        _ => k.emit::<T>(id, label, "map", Box::new(MapOpaque { node, src, dst })),
    }
}

pub(crate) fn lower_map2<A: Value, B: Value, T: Value>(
    node: Arc<Map2Node<A, B, T>>,
    tag: Option<Map2Tag>,
    left: NodeId,
    right: NodeId,
    k: &mut KernelBuilder,
) {
    let a = k.reg(left);
    let b = k.reg(right);
    let dst = k.next_reg();
    let (id, label) = (node.id(), node.label());
    let f64_in =
        TypeId::of::<A>() == TypeId::of::<f64>() && TypeId::of::<B>() == TypeId::of::<f64>();
    let bool_in =
        TypeId::of::<A>() == TypeId::of::<bool>() && TypeId::of::<B>() == TypeId::of::<bool>();
    match tag {
        Some(Map2Tag::F64(op)) if f64_in && TypeId::of::<T>() == TypeId::of::<f64>() => {
            k.emit::<f64>(id, label, "binary", Box::new(BinF64 { op, a, b, dst }));
        }
        Some(Map2Tag::Cmp(op)) if f64_in && TypeId::of::<T>() == TypeId::of::<bool>() => {
            k.emit::<bool>(id, label, "cmp", Box::new(CmpF64 { op, a, b, dst }));
        }
        Some(Map2Tag::Bool(op)) if bool_in && TypeId::of::<T>() == TypeId::of::<bool>() => {
            k.emit::<bool>(id, label, "bool", Box::new(BoolBin { op, a, b, dst }));
        }
        _ => k.emit::<T>(id, label, "map2", Box::new(Map2Opaque { node, a, b, dst })),
    }
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

/// The columnar compilation of a network rooted in a `T`: a flat
/// instruction tape plus the recipe for its register file.
///
/// A kernel is immutable and shareable (`Send + Sync`); per-thread scratch
/// lives in a [`KernelState`].
pub(crate) struct Kernel<T> {
    instrs: Vec<Box<dyn Instr>>,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    metas: Vec<InstrMeta>,
    makers: Vec<ColMaker>,
    root: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for Kernel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("instrs", &self.instrs.len())
            .field("root", &self.root)
            .finish()
    }
}

/// The mutable scratch of one kernel executor: the register columns and
/// the per-sample RNGs. Reused across batches so steady-state SPRT runs
/// stop allocating.
pub(crate) struct KernelState {
    regs: Vec<Box<dyn Col>>,
    rngs: Vec<SmallRng>,
}

impl std::fmt::Debug for KernelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelState")
            .field("regs", &self.regs.len())
            .finish()
    }
}

impl<T: Value> Kernel<T> {
    /// Lowers a network to a tape, or `None` if any reachable node needs
    /// `SampleContext` machinery (see the module docs' fallback rules).
    ///
    /// The walk is iterative — an explicit work stack, not recursion — so
    /// thousand-node evidence chains lower safely in debug builds.
    pub(crate) fn lower(network: &Uncertain<T>) -> Option<Self> {
        let mut b = KernelBuilder::default();
        let root = network.node().clone() as Arc<dyn NodeInfo>;
        let mut stack: Vec<(Arc<dyn NodeInfo>, bool)> = vec![(Arc::clone(&root), false)];
        while let Some((node, expanded)) = stack.pop() {
            if b.has(node.id()) {
                continue;
            }
            if expanded {
                if !node.lower(&mut b) {
                    return None;
                }
            } else {
                let children = node.lower_children()?;
                stack.push((Arc::clone(&node), true));
                for child in children.into_iter().rev() {
                    if !b.has(child.id()) {
                        stack.push((child, false));
                    }
                }
            }
        }
        let root_reg = b.reg(root.id());
        Some(Kernel {
            instrs: b.instrs,
            metas: b.metas,
            makers: b.makers,
            root: root_reg,
            _marker: PhantomData,
        })
    }

    /// Instructions on the tape (== registers in the file).
    #[cfg(feature = "obs")]
    pub(crate) fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Allocates an empty register file + RNG scratch for this kernel.
    pub(crate) fn new_state(&self) -> KernelState {
        KernelState {
            regs: self.makers.iter().map(|make| make()).collect(),
            rngs: Vec::new(),
        }
    }

    /// Runs the tape over one batch — `seeds[i]` seeds sample `i`'s RNG,
    /// exactly as the closure path would `reseed` per sample — and
    /// **appends** the root column to `out`.
    pub(crate) fn run_into(&self, seeds: &[u64], state: &mut KernelState, out: &mut Vec<T>) {
        let n = seeds.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(state.regs.len(), self.instrs.len());
        state.rngs.clear();
        state
            .rngs
            .extend(seeds.iter().map(|&s| SmallRng::seed_from_u64(s)));
        for instr in &self.instrs {
            instr.run(&mut state.regs, &mut state.rngs, n);
        }
        let root = col_ref::<T>(state.regs[self.root].as_ref());
        out.extend_from_slice(&root[..n]);
    }

    /// [`run_into`](Self::run_into) with a wall-clock timer around every
    /// instruction's column pass, accumulating into `ns` (one slot per
    /// instruction). The sample values are identical to an unprofiled run.
    #[cfg(feature = "obs")]
    pub(crate) fn run_profiled_into(
        &self,
        seeds: &[u64],
        state: &mut KernelState,
        out: &mut Vec<T>,
        ns: &mut [u64],
    ) {
        let n = seeds.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(ns.len(), self.instrs.len());
        state.rngs.clear();
        state
            .rngs
            .extend(seeds.iter().map(|&s| SmallRng::seed_from_u64(s)));
        for (i, instr) in self.instrs.iter().enumerate() {
            let start = std::time::Instant::now();
            instr.run(&mut state.regs, &mut state.rngs, n);
            ns[i] += start.elapsed().as_nanos() as u64;
        }
        let root = col_ref::<T>(state.regs[self.root].as_ref());
        out.extend_from_slice(&root[..n]);
    }

    /// Assembles the per-instruction metadata and timings into the public
    /// profile type.
    #[cfg(feature = "obs")]
    pub(crate) fn profile(&self, ns: &[u64], samples: u64) -> crate::obs::KernelProfile {
        crate::obs::KernelProfile {
            instrs: self
                .metas
                .iter()
                .zip(ns)
                .map(|(meta, &ns)| crate::obs::InstrCost {
                    node: meta.node,
                    label: meta.label.clone(),
                    op: meta.op,
                    elems: samples,
                    ns,
                })
                .collect(),
            samples,
        }
    }
}

/// Shards one indexed batch across `threads` scoped workers, each running
/// the tape over contiguous chunks of the index space. Sample `i` is
/// seeded `sample_seed(seed, start + i)` regardless of the thread count or
/// chunk boundaries, so results are bitwise identical to a serial run —
/// the kernel twin of `plan::sample_batch_sharded`.
pub(crate) fn sharded_batch<T: Value>(
    kernel: &Kernel<T>,
    seed: u64,
    start: u64,
    n: usize,
    threads: usize,
) -> Vec<T> {
    let workers = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    let mut part = Vec::with_capacity(hi - lo);
                    let mut state = kernel.new_state();
                    let mut seeds = Vec::with_capacity(KERNEL_CHUNK.min(hi - lo));
                    let mut done = lo;
                    while done < hi {
                        let take = (hi - done).min(KERNEL_CHUNK);
                        seeds.clear();
                        seeds.extend(
                            (0..take).map(|j| sample_seed(seed, start + (done + j) as u64)),
                        );
                        kernel.run_into(&seeds, &mut state, &mut part);
                        done += take;
                    }
                    part
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("kernel shard worker panicked"));
        }
    });
    out
}
