//! The columnar batch backend: a network lowered to a flat instruction
//! tape and evaluated column-wise (one operation over a whole batch).
//!
//! [`Plan`](crate::Plan) evaluates one joint sample at a time through a
//! tree of boxed closures — per sample per node it pays virtual dispatch,
//! slot-epoch bookkeeping, and memo probes. The SPRT hot path never wants
//! one sample; it wants a *batch*. A [`Kernel`] is the batch-shaped
//! compilation of the same network:
//!
//! * **Tape**: a post-order walk over the deduplicated DAG emits one
//!   SSA-style instruction per [`NodeId`]. Shared sub-expressions (the
//!   paper's Fig. 8) fall out for free — a node reached twice is lowered
//!   once and both parents read its register.
//! * **Registers**: structure-of-arrays column buffers (`Vec<f64>`,
//!   `Vec<bool>`, or `Vec<T>` for opaque values), one per instruction.
//!   Because emission is post-order, an instruction's destination index is
//!   strictly greater than its sources' — `split_at_mut` gives the
//!   disjoint mutable/shared views without unsafe code.
//! * **Leaves** fill their column from per-sample-index RNGs seeded by the
//!   same SplitMix64 substream derivation as [`ParSampler`]
//!   (`plan::sample_seed`), and instructions consume each sample's RNG in
//!   exactly the order the closure path visits nodes — so a kernel batch
//!   is **bitwise identical** to the closure path, sample for sample.
//! * **Tagged arithmetic** (`+ - * / %`, comparisons, boolean ops, and the
//!   `f64` method lifts) runs as tight monomorphic loops over columns that
//!   the compiler can unroll and vectorize. Untagged `map`/`map2` closures
//!   still lower — they run the closure per element, which keeps the
//!   whole-network fallback rare.
//!
//! Networks containing nodes whose sampling needs `SampleContext`
//! machinery — `flat_map` (fresh memo scope per outer draw),
//! `encapsulate` (forked RNG), `weight_by` (SIR loop), `condition_on`
//! (rejection loop) — do not lower; [`Kernel::lower`] returns `None` and
//! callers keep the closure path. The fallback is per *network*, never per
//! sample, so a network always takes one path and stays reproducible.

use crate::node::{LeafNode, Map2Node, MapNode, NodeId, NodeInfo};
use crate::plan::sample_seed;
use crate::uncertain::{Uncertain, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Rows evaluated per column pass when a caller streams a large batch
/// through [`Kernel::run_into`] in chunks: big enough that per-chunk setup
/// amortizes to nothing, small enough that register columns stay cache-
/// and memory-friendly for thousand-node tapes.
pub(crate) const KERNEL_CHUNK: usize = 4096;

// ---------------------------------------------------------------------------
// Operation tags
// ---------------------------------------------------------------------------

/// A unary `f64 → f64` operation a `map` node advertises to the kernel.
///
/// The `*K` variants carry the scalar a lifted operator captured in its
/// closure (`x + 3.0` is `AddK(3.0)`); `R*K` are the reversed,
/// non-commutative forms (`3.0 - x` is `RsubK(3.0)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum UnOp {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Ln,
    Sin,
    Cos,
    Asin,
    Atan,
    ToRadians,
    ToDegrees,
    AddK(f64),
    SubK(f64),
    RsubK(f64),
    MulK(f64),
    DivK(f64),
    RdivK(f64),
    RemK(f64),
    RremK(f64),
    PowiK(i32),
    PowfK(f64),
    ClampK(f64, f64),
}

impl UnOp {
    /// Fills `out[..n]` with the operation applied to `a[..n]`, one
    /// monomorphic loop per variant.
    fn fill(self, a: &[f64], out: &mut Vec<f64>, n: usize) {
        #[inline]
        fn loop_fill(a: &[f64], out: &mut Vec<f64>, n: usize, f: impl Fn(f64) -> f64) {
            out.clear();
            out.extend(a[..n].iter().map(|&x| f(x)));
        }
        match self {
            UnOp::Neg => loop_fill(a, out, n, |x| -x),
            UnOp::Abs => loop_fill(a, out, n, f64::abs),
            UnOp::Sqrt => loop_fill(a, out, n, f64::sqrt),
            UnOp::Exp => loop_fill(a, out, n, f64::exp),
            UnOp::Ln => loop_fill(a, out, n, f64::ln),
            UnOp::Sin => loop_fill(a, out, n, f64::sin),
            UnOp::Cos => loop_fill(a, out, n, f64::cos),
            UnOp::Asin => loop_fill(a, out, n, f64::asin),
            UnOp::Atan => loop_fill(a, out, n, f64::atan),
            UnOp::ToRadians => loop_fill(a, out, n, f64::to_radians),
            UnOp::ToDegrees => loop_fill(a, out, n, f64::to_degrees),
            UnOp::AddK(k) => loop_fill(a, out, n, |x| x + k),
            UnOp::SubK(k) => loop_fill(a, out, n, |x| x - k),
            UnOp::RsubK(k) => loop_fill(a, out, n, |x| k - x),
            UnOp::MulK(k) => loop_fill(a, out, n, |x| x * k),
            UnOp::DivK(k) => loop_fill(a, out, n, |x| x / k),
            UnOp::RdivK(k) => loop_fill(a, out, n, |x| k / x),
            UnOp::RemK(k) => loop_fill(a, out, n, |x| x % k),
            UnOp::RremK(k) => loop_fill(a, out, n, |x| k % x),
            UnOp::PowiK(k) => loop_fill(a, out, n, |x| x.powi(k)),
            UnOp::PowfK(k) => loop_fill(a, out, n, |x| x.powf(k)),
            UnOp::ClampK(lo, hi) => loop_fill(a, out, n, |x| x.clamp(lo, hi)),
        }
    }

    /// Applies the operation to one scalar — exactly the expression the
    /// corresponding [`UnOp::fill`] loop body evaluates, so constant
    /// folding through `apply` is bitwise identical to running the column
    /// pass over a constant column.
    pub(crate) fn apply(self, x: f64) -> f64 {
        match self {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
            UnOp::Exp => x.exp(),
            UnOp::Ln => x.ln(),
            UnOp::Sin => x.sin(),
            UnOp::Cos => x.cos(),
            UnOp::Asin => x.asin(),
            UnOp::Atan => x.atan(),
            UnOp::ToRadians => x.to_radians(),
            UnOp::ToDegrees => x.to_degrees(),
            UnOp::AddK(k) => x + k,
            UnOp::SubK(k) => x - k,
            UnOp::RsubK(k) => k - x,
            UnOp::MulK(k) => x * k,
            UnOp::DivK(k) => x / k,
            UnOp::RdivK(k) => k / x,
            UnOp::RemK(k) => x % k,
            UnOp::RremK(k) => k % x,
            UnOp::PowiK(k) => x.powi(k),
            UnOp::PowfK(k) => x.powf(k),
            UnOp::ClampK(lo, hi) => x.clamp(lo, hi),
        }
    }
}

/// A stable hash key for a [`UnOp`] (its variants capture `f64` scalars,
/// which are keyed by bit pattern — two `NaN` captures only merge when
/// their payloads match).
fn un_key(op: UnOp) -> (u8, u64, u64) {
    match op {
        UnOp::Neg => (0, 0, 0),
        UnOp::Abs => (1, 0, 0),
        UnOp::Sqrt => (2, 0, 0),
        UnOp::Exp => (3, 0, 0),
        UnOp::Ln => (4, 0, 0),
        UnOp::Sin => (5, 0, 0),
        UnOp::Cos => (6, 0, 0),
        UnOp::Asin => (7, 0, 0),
        UnOp::Atan => (8, 0, 0),
        UnOp::ToRadians => (9, 0, 0),
        UnOp::ToDegrees => (10, 0, 0),
        UnOp::AddK(k) => (11, k.to_bits(), 0),
        UnOp::SubK(k) => (12, k.to_bits(), 0),
        UnOp::RsubK(k) => (13, k.to_bits(), 0),
        UnOp::MulK(k) => (14, k.to_bits(), 0),
        UnOp::DivK(k) => (15, k.to_bits(), 0),
        UnOp::RdivK(k) => (16, k.to_bits(), 0),
        UnOp::RemK(k) => (17, k.to_bits(), 0),
        UnOp::RremK(k) => (18, k.to_bits(), 0),
        UnOp::PowiK(k) => (19, k as u32 as u64, 0),
        UnOp::PowfK(k) => (20, k.to_bits(), 0),
        UnOp::ClampK(lo, hi) => (21, lo.to_bits(), hi.to_bits()),
    }
}

/// A binary `f64 × f64 → f64` operation a `map2` node advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Max,
    Min,
    Atan2,
}

impl BinOp {
    fn fill(self, a: &[f64], b: &[f64], out: &mut Vec<f64>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[f64],
            b: &[f64],
            out: &mut Vec<f64>,
            n: usize,
            f: impl Fn(f64, f64) -> f64,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            BinOp::Add => loop_fill(a, b, out, n, |x, y| x + y),
            BinOp::Sub => loop_fill(a, b, out, n, |x, y| x - y),
            BinOp::Mul => loop_fill(a, b, out, n, |x, y| x * y),
            BinOp::Div => loop_fill(a, b, out, n, |x, y| x / y),
            BinOp::Rem => loop_fill(a, b, out, n, |x, y| x % y),
            BinOp::Max => loop_fill(a, b, out, n, f64::max),
            BinOp::Min => loop_fill(a, b, out, n, f64::min),
            BinOp::Atan2 => loop_fill(a, b, out, n, f64::atan2),
        }
    }

    /// Scalar twin of the [`BinOp::fill`] loop body (see [`UnOp::apply`]).
    pub(crate) fn apply(self, x: f64, y: f64) -> f64 {
        match self {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            BinOp::Max => x.max(y),
            BinOp::Min => x.min(y),
            BinOp::Atan2 => x.atan2(y),
        }
    }

    /// The `UnOp` equivalent of this operation with a constant **left**
    /// operand (`k op x`), where one exists. `None` for `Max`/`Min`/
    /// `Atan2`, which have no `*K` forms.
    ///
    /// For the commutative ops (`Add`, `Mul`) this swaps operand order
    /// (`k + x` becomes the `AddK` loop's `x + k`); IEEE addition and
    /// multiplication are bitwise commutative whenever at most one operand
    /// is NaN, so callers must skip NaN constants — with two NaNs, which
    /// payload propagates depends on operand order.
    fn with_const_lhs(self, k: f64) -> Option<UnOp> {
        Some(match self {
            BinOp::Add => UnOp::AddK(k),
            BinOp::Sub => UnOp::RsubK(k),
            BinOp::Mul => UnOp::MulK(k),
            BinOp::Div => UnOp::RdivK(k),
            BinOp::Rem => UnOp::RremK(k),
            BinOp::Max | BinOp::Min | BinOp::Atan2 => return None,
        })
    }

    /// The `UnOp` equivalent with a constant **right** operand (`x op k`).
    /// Same NaN caveat as [`BinOp::with_const_lhs`].
    fn with_const_rhs(self, k: f64) -> Option<UnOp> {
        Some(match self {
            BinOp::Add => UnOp::AddK(k),
            BinOp::Sub => UnOp::SubK(k),
            BinOp::Mul => UnOp::MulK(k),
            BinOp::Div => UnOp::DivK(k),
            BinOp::Rem => UnOp::RemK(k),
            BinOp::Max | BinOp::Min | BinOp::Atan2 => return None,
        })
    }
}

/// A `f64 × f64 → bool` comparison a lifted operator advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CmpOp {
    Gt,
    Lt,
    Ge,
    Le,
    Eq,
    Ne,
}

impl CmpOp {
    fn fill(self, a: &[f64], b: &[f64], out: &mut Vec<bool>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[f64],
            b: &[f64],
            out: &mut Vec<bool>,
            n: usize,
            f: impl Fn(f64, f64) -> bool,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            CmpOp::Gt => loop_fill(a, b, out, n, |x, y| x > y),
            CmpOp::Lt => loop_fill(a, b, out, n, |x, y| x < y),
            CmpOp::Ge => loop_fill(a, b, out, n, |x, y| x >= y),
            CmpOp::Le => loop_fill(a, b, out, n, |x, y| x <= y),
            CmpOp::Eq => loop_fill(a, b, out, n, |x, y| x == y),
            CmpOp::Ne => loop_fill(a, b, out, n, |x, y| x != y),
        }
    }

    /// Scalar twin of the [`CmpOp::fill`] loop body.
    pub(crate) fn apply(self, x: f64, y: f64) -> bool {
        match self {
            CmpOp::Gt => x > y,
            CmpOp::Lt => x < y,
            CmpOp::Ge => x >= y,
            CmpOp::Le => x <= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        }
    }
}

/// A `bool × bool → bool` connective a lifted operator advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BoolOp {
    And,
    Or,
    Xor,
}

impl BoolOp {
    fn fill(self, a: &[bool], b: &[bool], out: &mut Vec<bool>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[bool],
            b: &[bool],
            out: &mut Vec<bool>,
            n: usize,
            f: impl Fn(bool, bool) -> bool,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            BoolOp::And => loop_fill(a, b, out, n, |x, y| x & y),
            BoolOp::Or => loop_fill(a, b, out, n, |x, y| x | y),
            BoolOp::Xor => loop_fill(a, b, out, n, |x, y| x ^ y),
        }
    }

    /// Scalar twin of the [`BoolOp::fill`] loop body.
    pub(crate) fn apply(self, x: bool, y: bool) -> bool {
        match self {
            BoolOp::And => x & y,
            BoolOp::Or => x | y,
            BoolOp::Xor => x ^ y,
        }
    }
}

/// What a `map` node means to the kernel, beyond its opaque closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MapTag {
    /// A unary `f64 → f64` operation.
    F64(UnOp),
    /// Boolean negation.
    NotBool,
}

/// What a `map2` node means to the kernel, beyond its opaque closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Map2Tag {
    /// A binary `f64 × f64 → f64` operation.
    F64(BinOp),
    /// A `f64` comparison producing `bool`.
    Cmp(CmpOp),
    /// A boolean connective.
    Bool(BoolOp),
}

/// Tags a generic unary lift when its element type is `f64`. The closure
/// defers `UnOp` construction so scalar captures are only converted for
/// the type the tag is valid for.
pub(crate) fn un_tag_for<T: 'static>(op: impl FnOnce() -> UnOp) -> Option<MapTag> {
    (TypeId::of::<T>() == TypeId::of::<f64>()).then(|| MapTag::F64(op()))
}

/// Tags a generic binary lift when its element type is `f64`.
pub(crate) fn bin_tag_for<T: 'static>(op: BinOp) -> Option<Map2Tag> {
    (TypeId::of::<T>() == TypeId::of::<f64>()).then_some(Map2Tag::F64(op))
}

/// Tags a generic comparison lift when its element type is `f64`.
pub(crate) fn cmp_tag_for<T: 'static>(op: CmpOp) -> Option<Map2Tag> {
    (TypeId::of::<T>() == TypeId::of::<f64>()).then_some(Map2Tag::Cmp(op))
}

// ---------------------------------------------------------------------------
// Register columns
// ---------------------------------------------------------------------------

/// A type-erased register column (`Vec<T>` behind `dyn Any` access).
pub(crate) trait Col: Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Send + 'static> Col for Vec<T> {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Allocates one (empty) column of an instruction's output type.
type ColMaker = Box<dyn Fn() -> Box<dyn Col> + Send + Sync>;

fn col_ref<T: 'static>(c: &dyn Col) -> &Vec<T> {
    c.as_any()
        .downcast_ref()
        .expect("kernel register column has its instruction's output type")
}

fn col_mut<T: 'static>(c: &mut dyn Col) -> &mut Vec<T> {
    c.as_any_mut()
        .downcast_mut()
        .expect("kernel register column has its instruction's output type")
}

/// Splits the register file at an instruction's destination: sources are
/// strictly below it (post-order SSA), so `lo` holds every readable source
/// column and `dst` is the writable destination.
fn dst_and_srcs(regs: &mut [Box<dyn Col>], dst: usize) -> (&mut dyn Col, &[Box<dyn Col>]) {
    let (lo, hi) = regs.split_at_mut(dst);
    (hi[0].as_mut(), lo)
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

/// Structural shape of an instruction, as reported to the optimizer.
///
/// `Opaque` means "a pure per-element closure the optimizer must not fold
/// or merge, but may eliminate if dead". `Leaf` additionally pins the
/// instruction in place: leaves consume per-sample RNG draws, and every
/// sample's RNG is shared across the whole tape in tape order — dropping,
/// merging, or reordering a leaf would shift every later leaf's draws and
/// break bitwise equality with the closure path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum InstrKind {
    Leaf,
    ConstF64(f64),
    ConstBool(bool),
    /// A `FillPoint` of some type other than `f64`/`bool`.
    ConstOther,
    Un(UnOp, usize),
    Bin(BinOp, usize, usize),
    Cmp(CmpOp, usize, usize),
    Bool(BoolOp, usize, usize),
    Not(usize),
    MulAdd {
        a: usize,
        b: usize,
        c: usize,
        c_first: bool,
    },
    MulKAdd {
        k: f64,
        a: usize,
        c: usize,
        c_first: bool,
    },
    Opaque,
}

/// One tape instruction: computes its destination column from source
/// columns (and, for leaves, the per-sample RNGs) for `n` rows.
pub(crate) trait Instr: Send + Sync {
    fn run(&self, regs: &mut [Box<dyn Col>], rngs: &mut [SmallRng], n: usize);

    /// Structural shape for the optimizer. Source indices in the returned
    /// kind are the instruction's raw register fields.
    fn kind(&self) -> InstrKind;

    /// Source registers read by [`Instr::run`].
    fn srcs(&self) -> Vec<usize>;

    /// Clones the instruction with destination `dst` and each source `s`
    /// replaced by `map[s]`.
    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr>;
}

struct FillLeaf<T: Value> {
    node: Arc<LeafNode<T>>,
    dst: usize,
}

impl<T: Value> Instr for FillLeaf<T> {
    fn run(&self, regs: &mut [Box<dyn Col>], rngs: &mut [SmallRng], n: usize) {
        let out = col_mut::<T>(regs[self.dst].as_mut());
        if let Some(fill) = self.node.fill_fn() {
            // Vectorized column fill — bitwise-identical to the scalar
            // loop below by the `fill_column` contract.
            fill(&mut rngs[..n], out);
        } else {
            out.clear();
            out.reserve(n);
            for rng in rngs[..n].iter_mut() {
                out.push(self.node.sample_raw(rng));
            }
        }
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Leaf
    }

    fn srcs(&self) -> Vec<usize> {
        Vec::new()
    }

    fn remap(&self, dst: usize, _map: &[usize]) -> Box<dyn Instr> {
        Box::new(FillLeaf {
            node: Arc::clone(&self.node),
            dst,
        })
    }
}

struct FillPoint<T: Value> {
    value: T,
    dst: usize,
}

impl<T: Value> Instr for FillPoint<T> {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let out = col_mut::<T>(regs[self.dst].as_mut());
        out.clear();
        out.extend((0..n).map(|_| self.value.clone()));
    }

    fn kind(&self) -> InstrKind {
        let v: &dyn Any = &self.value;
        if let Some(&x) = v.downcast_ref::<f64>() {
            InstrKind::ConstF64(x)
        } else if let Some(&b) = v.downcast_ref::<bool>() {
            InstrKind::ConstBool(b)
        } else {
            InstrKind::ConstOther
        }
    }

    fn srcs(&self) -> Vec<usize> {
        Vec::new()
    }

    fn remap(&self, dst: usize, _map: &[usize]) -> Box<dyn Instr> {
        Box::new(FillPoint {
            value: self.value.clone(),
            dst,
        })
    }
}

struct MapOpaque<A: Value, T: Value> {
    node: Arc<MapNode<A, T>>,
    src: usize,
    dst: usize,
}

impl<A: Value, T: Value> Instr for MapOpaque<A, T> {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<A>(srcs[self.src].as_ref());
        let out = col_mut::<T>(dst);
        out.clear();
        out.extend(a[..n].iter().map(|v| self.node.apply(v.clone())));
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.src]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(MapOpaque {
            node: Arc::clone(&self.node),
            src: map[self.src],
            dst,
        })
    }
}

struct Map2Opaque<A: Value, B: Value, T: Value> {
    node: Arc<Map2Node<A, B, T>>,
    a: usize,
    b: usize,
    dst: usize,
}

impl<A: Value, B: Value, T: Value> Instr for Map2Opaque<A, B, T> {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<A>(srcs[self.a].as_ref());
        let b = col_ref::<B>(srcs[self.b].as_ref());
        let out = col_mut::<T>(dst);
        out.clear();
        out.extend(
            a[..n]
                .iter()
                .zip(&b[..n])
                .map(|(x, y)| self.node.apply(x.clone(), y.clone())),
        );
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(Map2Opaque {
            node: Arc::clone(&self.node),
            a: map[self.a],
            b: map[self.b],
            dst,
        })
    }
}

struct UnF64 {
    op: UnOp,
    src: usize,
    dst: usize,
}

impl Instr for UnF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.src].as_ref());
        self.op.fill(a, col_mut::<f64>(dst), n);
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Un(self.op, self.src)
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.src]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(UnF64 {
            op: self.op,
            src: map[self.src],
            dst,
        })
    }
}

struct BinF64 {
    op: BinOp,
    a: usize,
    b: usize,
    dst: usize,
}

impl Instr for BinF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.a].as_ref());
        let b = col_ref::<f64>(srcs[self.b].as_ref());
        self.op.fill(a, b, col_mut::<f64>(dst), n);
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Bin(self.op, self.a, self.b)
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(BinF64 {
            op: self.op,
            a: map[self.a],
            b: map[self.b],
            dst,
        })
    }
}

struct CmpF64 {
    op: CmpOp,
    a: usize,
    b: usize,
    dst: usize,
}

impl Instr for CmpF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.a].as_ref());
        let b = col_ref::<f64>(srcs[self.b].as_ref());
        self.op.fill(a, b, col_mut::<bool>(dst), n);
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Cmp(self.op, self.a, self.b)
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(CmpF64 {
            op: self.op,
            a: map[self.a],
            b: map[self.b],
            dst,
        })
    }
}

struct BoolBin {
    op: BoolOp,
    a: usize,
    b: usize,
    dst: usize,
}

impl Instr for BoolBin {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<bool>(srcs[self.a].as_ref());
        let b = col_ref::<bool>(srcs[self.b].as_ref());
        self.op.fill(a, b, col_mut::<bool>(dst), n);
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Bool(self.op, self.a, self.b)
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(BoolBin {
            op: self.op,
            a: map[self.a],
            b: map[self.b],
            dst,
        })
    }
}

struct NotBool {
    src: usize,
    dst: usize,
}

impl Instr for NotBool {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<bool>(srcs[self.src].as_ref());
        let out = col_mut::<bool>(dst);
        out.clear();
        out.extend(a[..n].iter().map(|&x| !x));
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Not(self.src)
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.src]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(NotBool {
            src: map[self.src],
            dst,
        })
    }
}

/// Fused `a*b + c` (or `c + a*b` when `c_first`): the optimizer's
/// replacement for an `Add` whose `Mul` operand has no other use. The two
/// IEEE operations are still performed separately per element — this is
/// *loop* fusion (one column pass and one register instead of two), **not**
/// a hardware FMA contraction, so results stay bitwise identical to the
/// unfused tape.
struct MulAddF64 {
    a: usize,
    b: usize,
    c: usize,
    c_first: bool,
    dst: usize,
}

impl Instr for MulAddF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.a].as_ref());
        let b = col_ref::<f64>(srcs[self.b].as_ref());
        let c = col_ref::<f64>(srcs[self.c].as_ref());
        let out = col_mut::<f64>(dst);
        out.clear();
        let it = a[..n].iter().zip(&b[..n]).zip(&c[..n]);
        if self.c_first {
            out.extend(it.map(|((&x, &y), &z)| z + x * y));
        } else {
            out.extend(it.map(|((&x, &y), &z)| x * y + z));
        }
    }

    fn kind(&self) -> InstrKind {
        InstrKind::MulAdd {
            a: self.a,
            b: self.b,
            c: self.c,
            c_first: self.c_first,
        }
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b, self.c]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(MulAddF64 {
            a: map[self.a],
            b: map[self.b],
            c: map[self.c],
            c_first: self.c_first,
            dst,
        })
    }
}

/// Fused `a*k + c` / `c + a*k` — the strength-reduced (`MulK`) twin of
/// [`MulAddF64`], with the same bitwise guarantee.
struct MulKAddF64 {
    k: f64,
    a: usize,
    c: usize,
    c_first: bool,
    dst: usize,
}

impl Instr for MulKAddF64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.a].as_ref());
        let c = col_ref::<f64>(srcs[self.c].as_ref());
        let out = col_mut::<f64>(dst);
        out.clear();
        let k = self.k;
        let it = a[..n].iter().zip(&c[..n]);
        if self.c_first {
            out.extend(it.map(|(&x, &z)| z + x * k));
        } else {
            out.extend(it.map(|(&x, &z)| x * k + z));
        }
    }

    fn kind(&self) -> InstrKind {
        InstrKind::MulKAdd {
            k: self.k,
            a: self.a,
            c: self.c,
            c_first: self.c_first,
        }
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.c]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(MulKAddF64 {
            k: self.k,
            a: map[self.a],
            c: map[self.c],
            c_first: self.c_first,
            dst,
        })
    }
}

// ---------------------------------------------------------------------------
// f32 column mode (feature = "f32-columns")
// ---------------------------------------------------------------------------
//
// The opt-in reduced-precision mode: after the bitwise-preserving
// optimizer runs, the tape's *arithmetic interior* — tagged `f64`
// unary/binary/fused instructions, except the root — is demoted to
// operate on `Vec<f32>` register columns, halving column memory traffic
// and doubling SIMD lane width. Explicit cast instructions bridge the
// boundaries: leaf/point/opaque outputs are narrowed once where the
// demoted interior reads them, and widened back (exactly — every f32 is
// representable as f64) where comparisons, opaque closures, or the root
// need `f64` again. This mode deliberately trades the bitwise-equality
// contract for speed; it is off by default and never changes behavior
// unless a session opts in (`Session::with_f32_columns`).

#[cfg(feature = "f32-columns")]
impl UnOp {
    /// `f32` twin of [`UnOp::fill`]; scalar captures are narrowed once.
    fn fill_f32(self, a: &[f32], out: &mut Vec<f32>, n: usize) {
        #[inline]
        fn loop_fill(a: &[f32], out: &mut Vec<f32>, n: usize, f: impl Fn(f32) -> f32) {
            out.clear();
            out.extend(a[..n].iter().map(|&x| f(x)));
        }
        match self {
            UnOp::Neg => loop_fill(a, out, n, |x| -x),
            UnOp::Abs => loop_fill(a, out, n, f32::abs),
            UnOp::Sqrt => loop_fill(a, out, n, f32::sqrt),
            UnOp::Exp => loop_fill(a, out, n, f32::exp),
            UnOp::Ln => loop_fill(a, out, n, f32::ln),
            UnOp::Sin => loop_fill(a, out, n, f32::sin),
            UnOp::Cos => loop_fill(a, out, n, f32::cos),
            UnOp::Asin => loop_fill(a, out, n, f32::asin),
            UnOp::Atan => loop_fill(a, out, n, f32::atan),
            UnOp::ToRadians => loop_fill(a, out, n, f32::to_radians),
            UnOp::ToDegrees => loop_fill(a, out, n, f32::to_degrees),
            UnOp::AddK(k) => loop_fill(a, out, n, |x| x + k as f32),
            UnOp::SubK(k) => loop_fill(a, out, n, |x| x - k as f32),
            UnOp::RsubK(k) => loop_fill(a, out, n, |x| k as f32 - x),
            UnOp::MulK(k) => loop_fill(a, out, n, |x| x * k as f32),
            UnOp::DivK(k) => loop_fill(a, out, n, |x| x / k as f32),
            UnOp::RdivK(k) => loop_fill(a, out, n, |x| k as f32 / x),
            UnOp::RemK(k) => loop_fill(a, out, n, |x| x % k as f32),
            UnOp::RremK(k) => loop_fill(a, out, n, |x| k as f32 % x),
            UnOp::PowiK(k) => loop_fill(a, out, n, |x| x.powi(k)),
            UnOp::PowfK(k) => loop_fill(a, out, n, |x| x.powf(k as f32)),
            UnOp::ClampK(lo, hi) => loop_fill(a, out, n, |x| x.clamp(lo as f32, hi as f32)),
        }
    }
}

#[cfg(feature = "f32-columns")]
impl BinOp {
    /// `f32` twin of [`BinOp::fill`].
    fn fill_f32(self, a: &[f32], b: &[f32], out: &mut Vec<f32>, n: usize) {
        #[inline]
        fn loop_fill(
            a: &[f32],
            b: &[f32],
            out: &mut Vec<f32>,
            n: usize,
            f: impl Fn(f32, f32) -> f32,
        ) {
            out.clear();
            out.extend(a[..n].iter().zip(&b[..n]).map(|(&x, &y)| f(x, y)));
        }
        match self {
            BinOp::Add => loop_fill(a, b, out, n, |x, y| x + y),
            BinOp::Sub => loop_fill(a, b, out, n, |x, y| x - y),
            BinOp::Mul => loop_fill(a, b, out, n, |x, y| x * y),
            BinOp::Div => loop_fill(a, b, out, n, |x, y| x / y),
            BinOp::Rem => loop_fill(a, b, out, n, |x, y| x % y),
            BinOp::Max => loop_fill(a, b, out, n, f32::max),
            BinOp::Min => loop_fill(a, b, out, n, f32::min),
            BinOp::Atan2 => loop_fill(a, b, out, n, f32::atan2),
        }
    }
}

#[cfg(feature = "f32-columns")]
struct UnF32 {
    op: UnOp,
    src: usize,
    dst: usize,
}

#[cfg(feature = "f32-columns")]
impl Instr for UnF32 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f32>(srcs[self.src].as_ref());
        self.op.fill_f32(a, col_mut::<f32>(dst), n);
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.src]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(UnF32 {
            op: self.op,
            src: map[self.src],
            dst,
        })
    }
}

#[cfg(feature = "f32-columns")]
struct BinF32 {
    op: BinOp,
    a: usize,
    b: usize,
    dst: usize,
}

#[cfg(feature = "f32-columns")]
impl Instr for BinF32 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f32>(srcs[self.a].as_ref());
        let b = col_ref::<f32>(srcs[self.b].as_ref());
        self.op.fill_f32(a, b, col_mut::<f32>(dst), n);
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(BinF32 {
            op: self.op,
            a: map[self.a],
            b: map[self.b],
            dst,
        })
    }
}

#[cfg(feature = "f32-columns")]
struct MulAddF32 {
    a: usize,
    b: usize,
    c: usize,
    c_first: bool,
    dst: usize,
}

#[cfg(feature = "f32-columns")]
impl Instr for MulAddF32 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f32>(srcs[self.a].as_ref());
        let b = col_ref::<f32>(srcs[self.b].as_ref());
        let c = col_ref::<f32>(srcs[self.c].as_ref());
        let out = col_mut::<f32>(dst);
        out.clear();
        let it = a[..n].iter().zip(&b[..n]).zip(&c[..n]);
        if self.c_first {
            out.extend(it.map(|((&x, &y), &z)| z + x * y));
        } else {
            out.extend(it.map(|((&x, &y), &z)| x * y + z));
        }
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.b, self.c]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(MulAddF32 {
            a: map[self.a],
            b: map[self.b],
            c: map[self.c],
            c_first: self.c_first,
            dst,
        })
    }
}

#[cfg(feature = "f32-columns")]
struct MulKAddF32 {
    k: f32,
    a: usize,
    c: usize,
    c_first: bool,
    dst: usize,
}

#[cfg(feature = "f32-columns")]
impl Instr for MulKAddF32 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f32>(srcs[self.a].as_ref());
        let c = col_ref::<f32>(srcs[self.c].as_ref());
        let out = col_mut::<f32>(dst);
        out.clear();
        let k = self.k;
        let it = a[..n].iter().zip(&c[..n]);
        if self.c_first {
            out.extend(it.map(|(&x, &z)| z + x * k));
        } else {
            out.extend(it.map(|(&x, &z)| x * k + z));
        }
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.a, self.c]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(MulKAddF32 {
            k: self.k,
            a: map[self.a],
            c: map[self.c],
            c_first: self.c_first,
            dst,
        })
    }
}

/// Narrows an `f64` column to `f32` where the demoted interior reads it.
#[cfg(feature = "f32-columns")]
struct CastF64F32 {
    src: usize,
    dst: usize,
}

#[cfg(feature = "f32-columns")]
impl Instr for CastF64F32 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f64>(srcs[self.src].as_ref());
        let out = col_mut::<f32>(dst);
        out.clear();
        out.extend(a[..n].iter().map(|&x| x as f32));
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.src]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(CastF64F32 {
            src: map[self.src],
            dst,
        })
    }
}

/// Widens a demoted `f32` column back to `f64` (exact) for comparisons,
/// opaque closures, or the root.
#[cfg(feature = "f32-columns")]
struct CastF32F64 {
    src: usize,
    dst: usize,
}

#[cfg(feature = "f32-columns")]
impl Instr for CastF32F64 {
    fn run(&self, regs: &mut [Box<dyn Col>], _rngs: &mut [SmallRng], n: usize) {
        let (dst, srcs) = dst_and_srcs(regs, self.dst);
        let a = col_ref::<f32>(srcs[self.src].as_ref());
        let out = col_mut::<f64>(dst);
        out.clear();
        out.extend(a[..n].iter().map(|&x| x as f64));
    }

    fn kind(&self) -> InstrKind {
        InstrKind::Opaque
    }

    fn srcs(&self) -> Vec<usize> {
        vec![self.src]
    }

    fn remap(&self, dst: usize, map: &[usize]) -> Box<dyn Instr> {
        Box::new(CastF32F64 {
            src: map[self.src],
            dst,
        })
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Display metadata for one instruction — what the obs profiler reports.
/// Carried unconditionally (it is a few words per instruction) so lowering
/// is identical with and without the `obs` feature.
#[derive(Debug, Clone)]
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) struct InstrMeta {
    pub(crate) node: NodeId,
    pub(crate) label: String,
    pub(crate) op: &'static str,
}

/// Accumulates the tape during lowering; one register per emitted
/// instruction, allocated in post-order.
#[derive(Default)]
pub(crate) struct KernelBuilder {
    reg_of: HashMap<NodeId, usize>,
    instrs: Vec<Box<dyn Instr>>,
    metas: Vec<InstrMeta>,
    makers: Vec<ColMaker>,
}

impl KernelBuilder {
    /// Whether `id` already has a register (shared sub-expression).
    fn has(&self, id: NodeId) -> bool {
        self.reg_of.contains_key(&id)
    }

    /// The register holding an already-lowered node's column.
    pub(crate) fn reg(&self, id: NodeId) -> usize {
        self.reg_of[&id]
    }

    /// The register the next emitted instruction will write.
    pub(crate) fn next_reg(&self) -> usize {
        self.instrs.len()
    }

    /// Appends an instruction whose destination column holds `T`s.
    pub(crate) fn emit<T: Value>(
        &mut self,
        id: NodeId,
        label: String,
        op: &'static str,
        instr: Box<dyn Instr>,
    ) {
        let dst = self.instrs.len();
        self.reg_of.insert(id, dst);
        self.instrs.push(instr);
        self.metas.push(InstrMeta {
            node: id,
            label,
            op,
        });
        self.makers.push(Box::new(|| Box::new(Vec::<T>::new())));
    }
}

// ---------------------------------------------------------------------------
// Per-node lowering (called from the NodeInfo hooks in node.rs)
// ---------------------------------------------------------------------------

pub(crate) fn lower_leaf<T: Value>(node: Arc<LeafNode<T>>, k: &mut KernelBuilder) {
    let dst = k.next_reg();
    let (id, label) = (node.id(), node.label());
    // Distinguish vectorized column fills in the profile so the obs layer
    // can report scalar vs. batched leaf cost separately.
    let op = if node.fill_fn().is_some() {
        "leaf_vec"
    } else {
        "leaf"
    };
    k.emit::<T>(id, label, op, Box::new(FillLeaf { node, dst }));
}

pub(crate) fn lower_point<T: Value>(id: NodeId, label: String, value: T, k: &mut KernelBuilder) {
    let dst = k.next_reg();
    k.emit::<T>(id, label, "point", Box::new(FillPoint { value, dst }));
}

pub(crate) fn lower_map<A: Value, T: Value>(
    node: Arc<MapNode<A, T>>,
    tag: Option<MapTag>,
    child: NodeId,
    k: &mut KernelBuilder,
) {
    let src = k.reg(child);
    let dst = k.next_reg();
    let (id, label) = (node.id(), node.label());
    match tag {
        Some(MapTag::F64(op))
            if TypeId::of::<A>() == TypeId::of::<f64>()
                && TypeId::of::<T>() == TypeId::of::<f64>() =>
        {
            k.emit::<f64>(id, label, "unary", Box::new(UnF64 { op, src, dst }));
        }
        Some(MapTag::NotBool)
            if TypeId::of::<A>() == TypeId::of::<bool>()
                && TypeId::of::<T>() == TypeId::of::<bool>() =>
        {
            k.emit::<bool>(id, label, "not", Box::new(NotBool { src, dst }));
        }
        _ => k.emit::<T>(id, label, "map", Box::new(MapOpaque { node, src, dst })),
    }
}

pub(crate) fn lower_map2<A: Value, B: Value, T: Value>(
    node: Arc<Map2Node<A, B, T>>,
    tag: Option<Map2Tag>,
    left: NodeId,
    right: NodeId,
    k: &mut KernelBuilder,
) {
    let a = k.reg(left);
    let b = k.reg(right);
    let dst = k.next_reg();
    let (id, label) = (node.id(), node.label());
    let f64_in =
        TypeId::of::<A>() == TypeId::of::<f64>() && TypeId::of::<B>() == TypeId::of::<f64>();
    let bool_in =
        TypeId::of::<A>() == TypeId::of::<bool>() && TypeId::of::<B>() == TypeId::of::<bool>();
    match tag {
        Some(Map2Tag::F64(op)) if f64_in && TypeId::of::<T>() == TypeId::of::<f64>() => {
            k.emit::<f64>(id, label, "binary", Box::new(BinF64 { op, a, b, dst }));
        }
        Some(Map2Tag::Cmp(op)) if f64_in && TypeId::of::<T>() == TypeId::of::<bool>() => {
            k.emit::<bool>(id, label, "cmp", Box::new(CmpF64 { op, a, b, dst }));
        }
        Some(Map2Tag::Bool(op)) if bool_in && TypeId::of::<T>() == TypeId::of::<bool>() => {
            k.emit::<bool>(id, label, "bool", Box::new(BoolBin { op, a, b, dst }));
        }
        _ => k.emit::<T>(id, label, "map2", Box::new(Map2Opaque { node, a, b, dst })),
    }
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

/// The columnar compilation of a network rooted in a `T`: a flat
/// instruction tape plus the recipe for its register file.
///
/// A kernel is immutable and shareable (`Send + Sync`); per-thread scratch
/// lives in a [`KernelState`].
pub(crate) struct Kernel<T> {
    instrs: Vec<Box<dyn Instr>>,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    metas: Vec<InstrMeta>,
    makers: Vec<ColMaker>,
    root: usize,
    /// Tape length as lowered, before the optimizer ran.
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    pre_opt_len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for Kernel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("instrs", &self.instrs.len())
            .field("root", &self.root)
            .finish()
    }
}

/// The mutable scratch of one kernel executor: the register columns and
/// the per-sample RNGs. Reused across batches so steady-state SPRT runs
/// stop allocating.
pub(crate) struct KernelState {
    regs: Vec<Box<dyn Col>>,
    rngs: Vec<SmallRng>,
}

impl std::fmt::Debug for KernelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelState")
            .field("regs", &self.regs.len())
            .finish()
    }
}

impl<T: Value> Kernel<T> {
    /// Lowers a network to an **optimized** tape, or `None` if any
    /// reachable node needs `SampleContext` machinery (see the module
    /// docs' fallback rules). This is what production callers use; the
    /// optimizer never changes output bits (see [`Kernel::optimize`]).
    pub(crate) fn lower(network: &Uncertain<T>) -> Option<Self> {
        let mut k = Self::lower_raw(network)?;
        k.optimize();
        Some(k)
    }

    /// [`Kernel::lower`] followed by demotion of the arithmetic interior
    /// to `f32` columns — the opt-in reduced-precision column mode. The
    /// root register and everything RNG- or comparison-facing stays
    /// `f64`; see [`Kernel::demote_to_f32`] for the exact rules and the
    /// accuracy trade.
    #[cfg(feature = "f32-columns")]
    pub(crate) fn lower_f32(network: &Uncertain<T>) -> Option<Self> {
        let mut k = Self::lower_raw(network)?;
        k.optimize();
        k.demote_to_f32();
        Some(k)
    }

    /// Lowers a network to a tape without running the optimizer — the
    /// raw one-instruction-per-node form. Kept for tests and baselines
    /// that compare pre- and post-optimizer tapes.
    ///
    /// The walk is iterative — an explicit work stack, not recursion — so
    /// thousand-node evidence chains lower safely in debug builds.
    pub(crate) fn lower_raw(network: &Uncertain<T>) -> Option<Self> {
        let mut b = KernelBuilder::default();
        let root = network.node().clone() as Arc<dyn NodeInfo>;
        let mut stack: Vec<(Arc<dyn NodeInfo>, bool)> = vec![(Arc::clone(&root), false)];
        while let Some((node, expanded)) = stack.pop() {
            if b.has(node.id()) {
                continue;
            }
            if expanded {
                if !node.lower(&mut b) {
                    return None;
                }
            } else {
                let children = node.lower_children()?;
                stack.push((Arc::clone(&node), true));
                for child in children.into_iter().rev() {
                    if !b.has(child.id()) {
                        stack.push((child, false));
                    }
                }
            }
        }
        let root_reg = b.reg(root.id());
        let pre_opt_len = b.instrs.len();
        Some(Kernel {
            instrs: b.instrs,
            metas: b.metas,
            makers: b.makers,
            root: root_reg,
            pre_opt_len,
            _marker: PhantomData,
        })
    }

    /// Runs the SSA tape optimizer in place: constant folding + strength
    /// reduction, boolean identities, common-subexpression elimination,
    /// copy propagation, mul+add loop fusion, and dead-register
    /// elimination with register compaction.
    ///
    /// Every rewrite preserves output **bits** exactly — folds evaluate
    /// the same IEEE expression the column loop would, strength reduction
    /// and CSE only substitute bitwise-equal columns, and fusion keeps
    /// the multiply and add as two separate operations (no FMA
    /// contraction). No pass ever drops, merges, or reorders a `Leaf`
    /// instruction: leaves consume per-sample RNG draws in tape order, so
    /// they stay pinned even when their value is dead, keeping the draw
    /// sequence identical to the closure path.
    fn optimize(&mut self) {
        let n = self.instrs.len();
        let mut kinds: Vec<InstrKind> = self.instrs.iter().map(|i| i.kind()).collect();
        // `alias[i]` names a register whose column is bitwise equal to
        // `i`'s; aliases always point backwards at a register that is its
        // own representative, so one hop resolves.
        let mut alias: Vec<usize> = (0..n).collect();

        self.fold_constants(&mut kinds, &mut alias);
        Self::cse(&kinds, &mut alias);

        // Copy propagation: rewrite every source through the alias map so
        // aliased registers go dead, then refresh the cached kinds.
        if alias.iter().enumerate().any(|(i, &a)| a != i) {
            for i in 0..n {
                self.instrs[i] = self.instrs[i].remap(i, &alias);
            }
            self.root = alias[self.root];
            for (k, ins) in kinds.iter_mut().zip(&self.instrs) {
                *k = ins.kind();
            }
        }

        self.fuse_muladd(&mut kinds);
        self.dce_compact(&kinds);
    }

    /// Replaces instruction `i` with a constant `f64` fill. The register
    /// keeps its `Vec<f64>` column maker, so only the instruction (and
    /// its profile `op`) changes.
    fn set_const_f64(&mut self, i: usize, value: f64, kinds: &mut [InstrKind]) {
        self.instrs[i] = Box::new(FillPoint { value, dst: i });
        self.metas[i].op = "point";
        kinds[i] = InstrKind::ConstF64(value);
    }

    fn set_const_bool(&mut self, i: usize, value: bool, kinds: &mut [InstrKind]) {
        self.instrs[i] = Box::new(FillPoint { value, dst: i });
        self.metas[i].op = "point";
        kinds[i] = InstrKind::ConstBool(value);
    }

    /// Strength-reduces a binary op with one constant operand to its `*K`
    /// unary form (one column read instead of two).
    fn set_unary(&mut self, i: usize, op: UnOp, src: usize, kinds: &mut [InstrKind]) {
        self.instrs[i] = Box::new(UnF64 { op, src, dst: i });
        self.metas[i].op = "unary";
        kinds[i] = InstrKind::Un(op, src);
    }

    /// Forward constant-folding sweep. Also applies strength reduction
    /// (`Bin` with one constant operand → `*K` unary), the exact boolean
    /// identities, and double-negation elimination.
    ///
    /// Deliberately **not** folded, because the "identity" is not one in
    /// IEEE arithmetic: `x + 0.0` (breaks on `-0.0`), `x * 1.0` and
    /// `x / 1.0` (could be argued, but kept for uniformity), `x * 0.0`
    /// (breaks on infinities, NaN, and `-0.0`). Strength reduction with a
    /// NaN constant is skipped: for the commutative ops the operand swap
    /// could change which NaN payload propagates when both sides are NaN.
    fn fold_constants(&mut self, kinds: &mut [InstrKind], alias: &mut [usize]) {
        for i in 0..kinds.len() {
            match kinds[i] {
                InstrKind::Un(op, s) => {
                    if let InstrKind::ConstF64(v) = kinds[alias[s]] {
                        self.set_const_f64(i, op.apply(v), kinds);
                    }
                }
                InstrKind::Bin(op, a, b) => {
                    let (ra, rb) = (alias[a], alias[b]);
                    match (kinds[ra], kinds[rb]) {
                        (InstrKind::ConstF64(x), InstrKind::ConstF64(y)) => {
                            self.set_const_f64(i, op.apply(x, y), kinds);
                        }
                        (InstrKind::ConstF64(x), _) if !x.is_nan() => {
                            if let Some(un) = op.with_const_lhs(x) {
                                self.set_unary(i, un, rb, kinds);
                            }
                        }
                        (_, InstrKind::ConstF64(y)) if !y.is_nan() => {
                            if let Some(un) = op.with_const_rhs(y) {
                                self.set_unary(i, un, ra, kinds);
                            }
                        }
                        _ => {}
                    }
                }
                InstrKind::Cmp(op, a, b) => {
                    if let (InstrKind::ConstF64(x), InstrKind::ConstF64(y)) =
                        (kinds[alias[a]], kinds[alias[b]])
                    {
                        self.set_const_bool(i, op.apply(x, y), kinds);
                    }
                }
                InstrKind::Bool(op, a, b) => {
                    let (ra, rb) = (alias[a], alias[b]);
                    match (kinds[ra], kinds[rb]) {
                        (InstrKind::ConstBool(x), InstrKind::ConstBool(y)) => {
                            self.set_const_bool(i, op.apply(x, y), kinds);
                        }
                        (InstrKind::ConstBool(k), _) | (_, InstrKind::ConstBool(k)) => {
                            let other = if matches!(kinds[ra], InstrKind::ConstBool(_)) {
                                rb
                            } else {
                                ra
                            };
                            // Booleans have exact identities (unlike f64).
                            match (op, k) {
                                (BoolOp::And, true)
                                | (BoolOp::Or, false)
                                | (BoolOp::Xor, false) => alias[i] = other,
                                (BoolOp::And, false) => self.set_const_bool(i, false, kinds),
                                (BoolOp::Or, true) => self.set_const_bool(i, true, kinds),
                                (BoolOp::Xor, true) => {
                                    self.instrs[i] = Box::new(NotBool { src: other, dst: i });
                                    self.metas[i].op = "not";
                                    kinds[i] = InstrKind::Not(other);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                InstrKind::Not(s) => match kinds[alias[s]] {
                    InstrKind::ConstBool(v) => self.set_const_bool(i, !v, kinds),
                    // `!!x == x` exactly.
                    InstrKind::Not(inner) => alias[i] = alias[inner],
                    _ => {}
                },
                _ => {}
            }
        }
    }

    /// Value-numbering CSE: two pure instructions with the same op and
    /// the same (representative) sources compute bitwise-identical
    /// columns, so the later one aliases the earlier. Scalar captures are
    /// keyed by bit pattern, and operands are **not** commutatively
    /// canonicalized — `a+b` and `b+a` can differ in which NaN payload
    /// propagates when both operands are NaN — so only syntactic matches
    /// merge. Leaves (RNG consumers), opaque closures, and non-scalar
    /// constants have no identity key and never merge.
    fn cse(kinds: &[InstrKind], alias: &mut [usize]) {
        #[derive(PartialEq, Eq, Hash)]
        enum Key {
            ConstF64(u64),
            ConstBool(bool),
            Un((u8, u64, u64), usize),
            Bin(BinOp, usize, usize),
            Cmp(CmpOp, usize, usize),
            Bool(BoolOp, usize, usize),
            Not(usize),
        }
        let mut table: HashMap<Key, usize> = HashMap::new();
        for i in 0..kinds.len() {
            if alias[i] != i {
                continue;
            }
            let key = match kinds[i] {
                InstrKind::ConstF64(v) => Key::ConstF64(v.to_bits()),
                InstrKind::ConstBool(b) => Key::ConstBool(b),
                InstrKind::Un(op, s) => Key::Un(un_key(op), alias[s]),
                InstrKind::Bin(op, a, b) => Key::Bin(op, alias[a], alias[b]),
                InstrKind::Cmp(op, a, b) => Key::Cmp(op, alias[a], alias[b]),
                InstrKind::Bool(op, a, b) => Key::Bool(op, alias[a], alias[b]),
                InstrKind::Not(s) => Key::Not(alias[s]),
                _ => continue,
            };
            use std::collections::hash_map::Entry;
            match table.entry(key) {
                Entry::Occupied(e) => alias[i] = *e.get(),
                Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }

    /// Fuses an `Add` whose `Mul` (or `MulK`) operand has no other use
    /// into one fused column pass — halving the loop and register traffic
    /// for the `a*b + c` shapes that dominate lifted arithmetic. Runs
    /// after copy propagation, so kind source indices are final. The
    /// single-use requirement (counting the root as a use) guarantees the
    /// mul register goes dead and DCE reclaims it.
    fn fuse_muladd(&mut self, kinds: &mut [InstrKind]) {
        let n = kinds.len();
        let mut uses = vec![0u32; n];
        for ins in &self.instrs {
            for s in ins.srcs() {
                uses[s] += 1;
            }
        }
        uses[self.root] += 1;
        for i in 0..n {
            let InstrKind::Bin(BinOp::Add, p, q) = kinds[i] else {
                continue;
            };
            let (fused, kind): (Box<dyn Instr>, InstrKind) = match (kinds[p], kinds[q]) {
                (InstrKind::Bin(BinOp::Mul, x, y), _) if uses[p] == 1 => (
                    Box::new(MulAddF64 {
                        a: x,
                        b: y,
                        c: q,
                        c_first: false,
                        dst: i,
                    }),
                    InstrKind::MulAdd {
                        a: x,
                        b: y,
                        c: q,
                        c_first: false,
                    },
                ),
                (_, InstrKind::Bin(BinOp::Mul, x, y)) if uses[q] == 1 => (
                    Box::new(MulAddF64 {
                        a: x,
                        b: y,
                        c: p,
                        c_first: true,
                        dst: i,
                    }),
                    InstrKind::MulAdd {
                        a: x,
                        b: y,
                        c: p,
                        c_first: true,
                    },
                ),
                (InstrKind::Un(UnOp::MulK(k), x), _) if uses[p] == 1 => (
                    Box::new(MulKAddF64 {
                        k,
                        a: x,
                        c: q,
                        c_first: false,
                        dst: i,
                    }),
                    InstrKind::MulKAdd {
                        k,
                        a: x,
                        c: q,
                        c_first: false,
                    },
                ),
                (_, InstrKind::Un(UnOp::MulK(k), x)) if uses[q] == 1 => (
                    Box::new(MulKAddF64 {
                        k,
                        a: x,
                        c: p,
                        c_first: true,
                        dst: i,
                    }),
                    InstrKind::MulKAdd {
                        k,
                        a: x,
                        c: p,
                        c_first: true,
                    },
                ),
                _ => continue,
            };
            self.instrs[i] = fused;
            self.metas[i].op = "muladd";
            kinds[i] = kind;
        }
    }

    /// Dead-register elimination + compaction: drops every instruction
    /// whose column nobody (transitively) reads — except leaves, which
    /// stay so each sample's RNG draw sequence matches the closure path
    /// (which also samples dead leaves) — then renumbers the survivors
    /// densely so the register file shrinks with the tape.
    fn dce_compact(&mut self, kinds: &[InstrKind]) {
        let n = self.instrs.len();
        let mut keep = vec![false; n];
        let mut used = vec![false; n];
        used[self.root] = true;
        // Reverse sweep is sound: an instruction's sources are strictly
        // below it, so every user of `i` was visited before `i`.
        for i in (0..n).rev() {
            if used[i] || matches!(kinds[i], InstrKind::Leaf) {
                keep[i] = true;
                for s in self.instrs[i].srcs() {
                    used[s] = true;
                }
            }
        }
        if keep.iter().all(|&k| k) {
            return;
        }
        let mut map = vec![usize::MAX; n];
        let mut next = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                map[i] = next;
                next += 1;
            }
        }
        let instrs = std::mem::take(&mut self.instrs);
        let metas = std::mem::take(&mut self.metas);
        let makers = std::mem::take(&mut self.makers);
        self.instrs.reserve(next);
        for (i, ((ins, meta), maker)) in instrs.into_iter().zip(metas).zip(makers).enumerate() {
            if keep[i] {
                self.instrs.push(ins.remap(map[i], &map));
                self.metas.push(meta);
                self.makers.push(maker);
            }
        }
        self.root = map[self.root];
    }

    /// Demotes the tape's arithmetic interior to `f32` columns (see the
    /// "f32 column mode" section docs for what that buys and costs).
    ///
    /// Rules: every tagged `f64` unary/binary/fused instruction except
    /// the root register is rebuilt as its `f32` twin writing a
    /// `Vec<f32>` column. A `CastF64F32` is emitted right after any
    /// undemoted `f64` producer (leaf, point, opaque, root-adjacent) the
    /// interior reads, and a `CastF32F64` right after any demoted
    /// producer that an `f64` consumer (comparison, opaque closure, the
    /// root position) reads — widening is exact, so a comparison sees
    /// precisely the `f32` value the interior computed. Emission order
    /// preserves topological order, keeping the `dst > srcs` register
    /// invariant.
    #[cfg(feature = "f32-columns")]
    fn demote_to_f32(&mut self) {
        let n = self.instrs.len();
        let kinds: Vec<InstrKind> = self.instrs.iter().map(|i| i.kind()).collect();
        let arith = |k: &InstrKind| {
            matches!(
                k,
                InstrKind::Un(..)
                    | InstrKind::Bin(..)
                    | InstrKind::MulAdd { .. }
                    | InstrKind::MulKAdd { .. }
            )
        };
        let demote: Vec<bool> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| i != self.root && arith(k))
            .collect();
        if !demote.iter().any(|&d| d) {
            return;
        }
        // Which old registers need a view in the other precision.
        let mut need_f32 = vec![false; n];
        let mut need_f64 = vec![false; n];
        for i in 0..n {
            for s in self.instrs[i].srcs() {
                if demote[i] && !demote[s] {
                    need_f32[s] = true;
                }
                if !demote[i] && demote[s] {
                    need_f64[s] = true;
                }
            }
        }
        let old_root = self.root;
        let instrs = std::mem::take(&mut self.instrs);
        let metas = std::mem::take(&mut self.metas);
        let makers = std::mem::take(&mut self.makers);
        // New register holding old `i`'s column at f64 (for undemoted
        // producers: the instruction itself; for demoted ones: the
        // widening cast) and at f32 respectively.
        let mut f64_reg = vec![usize::MAX; n];
        let mut f32_reg = vec![usize::MAX; n];
        for (i, ((ins, meta), maker)) in instrs.into_iter().zip(metas).zip(makers).enumerate() {
            let cast_meta = (need_f32[i] || need_f64[i]).then(|| InstrMeta {
                node: meta.node,
                label: meta.label.clone(),
                op: "cast",
            });
            if demote[i] {
                let dst = self.instrs.len();
                let ins32: Box<dyn Instr> = match kinds[i] {
                    InstrKind::Un(op, s) => Box::new(UnF32 {
                        op,
                        src: f32_reg[s],
                        dst,
                    }),
                    InstrKind::Bin(op, a, b) => Box::new(BinF32 {
                        op,
                        a: f32_reg[a],
                        b: f32_reg[b],
                        dst,
                    }),
                    InstrKind::MulAdd { a, b, c, c_first } => Box::new(MulAddF32 {
                        a: f32_reg[a],
                        b: f32_reg[b],
                        c: f32_reg[c],
                        c_first,
                        dst,
                    }),
                    InstrKind::MulKAdd { k, a, c, c_first } => Box::new(MulKAddF32 {
                        k: k as f32,
                        a: f32_reg[a],
                        c: f32_reg[c],
                        c_first,
                        dst,
                    }),
                    _ => unreachable!("demotion only selects tagged f64 arithmetic"),
                };
                self.instrs.push(ins32);
                self.metas.push(meta);
                self.makers.push(Box::new(|| Box::new(Vec::<f32>::new())));
                f32_reg[i] = dst;
                if need_f64[i] {
                    let cast_dst = self.instrs.len();
                    self.instrs.push(Box::new(CastF32F64 {
                        src: dst,
                        dst: cast_dst,
                    }));
                    self.metas.push(cast_meta.expect("need flag set"));
                    self.makers.push(Box::new(|| Box::new(Vec::<f64>::new())));
                    f64_reg[i] = cast_dst;
                }
            } else {
                let dst = self.instrs.len();
                // Every source this instruction reads is available at its
                // original type under `f64_reg` by emission order (the
                // widening cast for a demoted source was emitted with it).
                self.instrs.push(ins.remap(dst, &f64_reg));
                self.metas.push(meta);
                self.makers.push(maker);
                f64_reg[i] = dst;
                if need_f32[i] {
                    let cast_dst = self.instrs.len();
                    self.instrs.push(Box::new(CastF64F32 {
                        src: dst,
                        dst: cast_dst,
                    }));
                    self.metas.push(cast_meta.expect("need flag set"));
                    self.makers.push(Box::new(|| Box::new(Vec::<f32>::new())));
                    f32_reg[i] = cast_dst;
                }
            }
        }
        self.root = f64_reg[old_root];
    }

    /// Instructions on the tape (== registers in the file).
    #[cfg(feature = "obs")]
    pub(crate) fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Allocates an empty register file + RNG scratch for this kernel.
    pub(crate) fn new_state(&self) -> KernelState {
        KernelState {
            regs: self.makers.iter().map(|make| make()).collect(),
            rngs: Vec::new(),
        }
    }

    /// Runs the tape over one batch — `seeds[i]` seeds sample `i`'s RNG,
    /// exactly as the closure path would `reseed` per sample — and
    /// **appends** the root column to `out`.
    pub(crate) fn run_into(&self, seeds: &[u64], state: &mut KernelState, out: &mut Vec<T>) {
        let n = seeds.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(state.regs.len(), self.instrs.len());
        state.rngs.clear();
        state
            .rngs
            .extend(seeds.iter().map(|&s| SmallRng::seed_from_u64(s)));
        for instr in &self.instrs {
            instr.run(&mut state.regs, &mut state.rngs, n);
        }
        let root = col_ref::<T>(state.regs[self.root].as_ref());
        out.extend_from_slice(&root[..n]);
    }

    /// [`run_into`](Self::run_into) with a wall-clock timer around every
    /// instruction's column pass, accumulating into `ns` (one slot per
    /// instruction). The sample values are identical to an unprofiled run.
    #[cfg(feature = "obs")]
    pub(crate) fn run_profiled_into(
        &self,
        seeds: &[u64],
        state: &mut KernelState,
        out: &mut Vec<T>,
        ns: &mut [u64],
    ) {
        let n = seeds.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(ns.len(), self.instrs.len());
        state.rngs.clear();
        state
            .rngs
            .extend(seeds.iter().map(|&s| SmallRng::seed_from_u64(s)));
        for (i, instr) in self.instrs.iter().enumerate() {
            let start = std::time::Instant::now();
            instr.run(&mut state.regs, &mut state.rngs, n);
            ns[i] += start.elapsed().as_nanos() as u64;
        }
        let root = col_ref::<T>(state.regs[self.root].as_ref());
        out.extend_from_slice(&root[..n]);
    }

    /// Assembles the per-instruction metadata and timings into the public
    /// profile type.
    #[cfg(feature = "obs")]
    pub(crate) fn profile(&self, ns: &[u64], samples: u64) -> crate::obs::KernelProfile {
        crate::obs::KernelProfile {
            instrs: self
                .metas
                .iter()
                .zip(ns)
                .map(|(meta, &ns)| crate::obs::InstrCost {
                    node: meta.node,
                    label: meta.label.clone(),
                    op: meta.op,
                    elems: samples,
                    ns,
                })
                .collect(),
            samples,
            pre_opt_instrs: self.pre_opt_len,
        }
    }
}

/// Shards one indexed batch across `threads` scoped workers, each running
/// the tape over contiguous chunks of the index space. Sample `i` is
/// seeded `sample_seed(seed, start + i)` regardless of the thread count or
/// chunk boundaries, so results are bitwise identical to a serial run —
/// the kernel twin of `plan::sample_batch_sharded`.
pub(crate) fn sharded_batch<T: Value>(
    kernel: &Kernel<T>,
    seed: u64,
    start: u64,
    n: usize,
    threads: usize,
) -> Vec<T> {
    let workers = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    let mut part = Vec::with_capacity(hi - lo);
                    let mut state = kernel.new_state();
                    let mut seeds = Vec::with_capacity(KERNEL_CHUNK.min(hi - lo));
                    let mut done = lo;
                    while done < hi {
                        let take = (hi - done).min(KERNEL_CHUNK);
                        seeds.clear();
                        seeds.extend(
                            (0..take).map(|j| sample_seed(seed, start + (done + j) as u64)),
                        );
                        kernel.run_into(&seeds, &mut state, &mut part);
                        done += take;
                    }
                    part
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("kernel shard worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncertain::Uncertain;

    fn run<T: Value>(k: &Kernel<T>, seed: u64, n: usize) -> Vec<T> {
        let seeds: Vec<u64> = (0..n as u64).map(|i| sample_seed(seed, i)).collect();
        let mut state = k.new_state();
        let mut out = Vec::with_capacity(n);
        k.run_into(&seeds, &mut state, &mut out);
        out
    }

    fn ops<T>(k: &Kernel<T>) -> Vec<&'static str> {
        k.metas.iter().map(|m| m.op).collect()
    }

    fn leaf_count<T>(k: &Kernel<T>) -> usize {
        k.metas
            .iter()
            .filter(|m| m.op == "leaf" || m.op == "leaf_vec")
            .count()
    }

    /// Lowers `net` raw and optimized, asserts the optimizer changed no
    /// output bit and dropped no leaf, and hands both tapes back for
    /// shape assertions.
    fn opt_preserves_f64(net: &Uncertain<f64>) -> (Kernel<f64>, Kernel<f64>) {
        let raw = Kernel::lower_raw(net).expect("lowerable");
        let opt = Kernel::lower(net).expect("lowerable");
        let raw_bits: Vec<u64> = run(&raw, 77, 257).iter().map(|x| x.to_bits()).collect();
        let opt_bits: Vec<u64> = run(&opt, 77, 257).iter().map(|x| x.to_bits()).collect();
        assert_eq!(raw_bits, opt_bits, "optimizer changed output bits");
        assert_eq!(
            leaf_count(&raw),
            leaf_count(&opt),
            "optimizer dropped a leaf — RNG draw order is broken"
        );
        (raw, opt)
    }

    fn opt_preserves_bool(net: &Uncertain<bool>) -> (Kernel<bool>, Kernel<bool>) {
        let raw = Kernel::lower_raw(net).expect("lowerable");
        let opt = Kernel::lower(net).expect("lowerable");
        assert_eq!(run(&raw, 91, 257), run(&opt, 91, 257));
        assert_eq!(leaf_count(&raw), leaf_count(&opt));
        (raw, opt)
    }

    #[test]
    fn fold_collapses_constant_subtrees_and_dce_removes_them() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        // (2 + 3) * x: the add folds to 5.0, the mul strength-reduces to
        // MulK(5.0), and DCE sweeps both point registers and the folded
        // constant. Only the leaf and one unary survive.
        let net = (Uncertain::point(2.0) + Uncertain::point(3.0)) * &x;
        let (raw, opt) = opt_preserves_f64(&net);
        assert_eq!(raw.instrs.len(), 5);
        assert_eq!(opt.instrs.len(), 2);
        assert_eq!(opt.pre_opt_len, 5);
        assert_eq!(ops(&opt), vec!["leaf_vec", "unary"]);
    }

    #[test]
    fn cse_merges_duplicate_subexpressions() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(0.0, 1.0).unwrap();
        // Two *distinct* add nodes over the same registers: CSE aliases
        // the second onto the first, copy-prop rewires the product, DCE
        // drops the duplicate column.
        let a = &x + &y;
        let b = &x + &y;
        let net = &a * &b;
        let (raw, opt) = opt_preserves_f64(&net);
        assert_eq!(raw.instrs.len(), 5);
        assert_eq!(opt.instrs.len(), 4, "duplicate add survived CSE");
    }

    #[test]
    fn muladd_fusion_fuses_single_use_products() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(0.0, 1.0).unwrap();
        let z = Uncertain::normal(1.0, 2.0).unwrap();
        let net = &x * &y + &z;
        let (raw, opt) = opt_preserves_f64(&net);
        assert_eq!(raw.instrs.len(), 5);
        assert_eq!(opt.instrs.len(), 4);
        assert!(ops(&opt).contains(&"muladd"), "ops: {:?}", ops(&opt));
    }

    #[test]
    fn mulk_add_fusion_handles_scalar_products() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let z = Uncertain::uniform(0.0, 1.0).unwrap();
        // x * 3 folds to MulK, then fuses with the add into MulKAdd; the
        // point register dies. Three instructions remain: two leaves and
        // the fused loop.
        let net = &x * 3.0 + &z;
        let (raw, opt) = opt_preserves_f64(&net);
        assert!(raw.instrs.len() > opt.instrs.len());
        assert_eq!(opt.instrs.len(), 3);
        assert!(ops(&opt).contains(&"muladd"), "ops: {:?}", ops(&opt));
    }

    #[test]
    fn shared_products_are_not_fused() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(0.0, 1.0).unwrap();
        // The product feeds two adds; fusing either would re-run the
        // multiply. Both adds must stay unfused.
        let p = &x * &y;
        let net = (&p + &x) + (&p + &y);
        let (_, opt) = opt_preserves_f64(&net);
        assert!(!ops(&opt).contains(&"muladd"), "ops: {:?}", ops(&opt));
    }

    #[test]
    fn bool_identities_keep_dead_leaves_alive() {
        let a = Uncertain::bernoulli(0.3).unwrap();
        let b = Uncertain::bernoulli(0.7).unwrap();
        // a & false folds to false; false | b aliases to b. Leaf `a` is
        // arithmetically dead but must stay on the tape: it consumes RNG
        // draws ahead of `b`, and the closure path samples it too.
        let net = (&a & Uncertain::point(false)) | &b;
        let (raw, opt) = opt_preserves_bool(&net);
        assert!(opt.instrs.len() < raw.instrs.len());
        assert_eq!(leaf_count(&opt), 2);
    }

    #[test]
    fn double_negation_cancels() {
        let b = Uncertain::bernoulli(0.4).unwrap();
        let net = !!(&b & &b);
        let (raw, opt) = opt_preserves_bool(&net);
        assert!(opt.instrs.len() < raw.instrs.len());
        assert!(!ops(&opt).contains(&"not"), "ops: {:?}", ops(&opt));
    }

    #[test]
    fn optimizer_is_identity_on_irreducible_tapes() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(0.0, 1.0).unwrap();
        // max has no *K form and the sub result is shared: nothing folds,
        // nothing fuses, nothing dies.
        let d = &x - &y;
        let net = d.map("max0", |v: f64| v.max(0.0)) + &d;
        let (raw, opt) = opt_preserves_f64(&net);
        assert_eq!(raw.instrs.len(), opt.instrs.len());
    }

    #[test]
    fn nan_constants_are_not_commuted() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        // NaN + x must NOT strength-reduce to AddK (which computes
        // x + NaN): with two NaN operands the propagated payload depends
        // on operand order. The binary instruction must survive.
        let net = Uncertain::point(f64::NAN) + &x;
        let (raw, opt) = opt_preserves_f64(&net);
        assert_eq!(raw.instrs.len(), opt.instrs.len());
        assert!(!ops(&opt).contains(&"unary"), "ops: {:?}", ops(&opt));
    }

    #[test]
    fn unop_apply_is_bitwise_twin_of_fill() {
        use UnOp::*;
        let all = [
            Neg,
            Abs,
            Sqrt,
            Exp,
            Ln,
            Sin,
            Cos,
            Asin,
            Atan,
            ToRadians,
            ToDegrees,
            AddK(1.5),
            SubK(1.5),
            RsubK(1.5),
            MulK(-2.5),
            DivK(3.0),
            RdivK(3.0),
            RemK(2.0),
            RremK(2.0),
            PowiK(3),
            PowfK(0.5),
            ClampK(-1.0, 1.0),
        ];
        let inputs = [
            -3.75,
            -1.0,
            -0.0,
            0.0,
            0.5,
            1.0,
            2.25,
            1e300,
            -1e-300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let mut out = Vec::new();
        for op in all {
            op.fill(&inputs, &mut out, inputs.len());
            for (i, &x) in inputs.iter().enumerate() {
                assert_eq!(
                    op.apply(x).to_bits(),
                    out[i].to_bits(),
                    "{op:?} apply/fill disagree at x={x}"
                );
            }
        }
    }

    #[test]
    fn binop_apply_is_bitwise_twin_of_fill() {
        use BinOp::*;
        let all = [Add, Sub, Mul, Div, Rem, Max, Min, Atan2];
        let xs = [-2.5, -0.0, 0.0, 1.5, f64::INFINITY, f64::NAN];
        let mut out = Vec::new();
        for op in all {
            for &y in &xs {
                let ys = [y; 6];
                op.fill(&xs, &ys, &mut out, xs.len());
                for (i, &x) in xs.iter().enumerate() {
                    assert_eq!(
                        op.apply(x, y).to_bits(),
                        out[i].to_bits(),
                        "{op:?} apply/fill disagree at ({x}, {y})"
                    );
                }
            }
        }
    }

    #[test]
    fn strength_reduced_forms_match_their_binary_twins() {
        // For non-NaN constants, AddK/MulK/… must compute the same bits
        // as the two-column binary loop they replace, for every lattice
        // corner the fold can see.
        let xs = [
            -2.5,
            -0.0,
            0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let ks = [-3.0, -0.0, 0.0, 0.5, 2.0, f64::INFINITY];
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem] {
            for &k in &ks {
                let lhs = op.with_const_lhs(k).unwrap();
                let rhs = op.with_const_rhs(k).unwrap();
                for &x in &xs {
                    assert_eq!(
                        lhs.apply(x).to_bits(),
                        op.apply(k, x).to_bits(),
                        "{op:?} const-lhs {k} at {x}"
                    );
                    assert_eq!(
                        rhs.apply(x).to_bits(),
                        op.apply(x, k).to_bits(),
                        "{op:?} const-rhs {k} at {x}"
                    );
                }
            }
        }
    }

    #[cfg(feature = "f32-columns")]
    #[test]
    fn f32_demotion_runs_and_stays_close() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(0.5, 1.5).unwrap();
        let net = (&x * &y + &x) * 0.25 - &y;
        let f64_k = Kernel::lower(&net).expect("lowerable");
        let f32_k = Kernel::lower_f32(&net).expect("lowerable");
        let exact = run(&f64_k, 123, 513);
        let demoted = run(&f32_k, 123, 513);
        assert_eq!(exact.len(), demoted.len());
        for (a, b) in exact.iter().zip(&demoted) {
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                "f32 demotion drifted: {a} vs {b}"
            );
        }
    }
}
