//! Lifted logical operators (paper Table 1: `∧ ∨` of type
//! `U<Bool> → U<Bool> → U<Bool>`, and unary `¬`).
//!
//! Rust cannot overload the short-circuiting `&&`/`||`, so the lifted
//! connectives use the bitwise `&`/`|`/`^` operators plus `!` — which is
//! also semantically honest: both operands of a lifted conjunction *are*
//! evaluated (within one joint sample), never short-circuited.

use crate::kernel::{BoolOp, Map2Tag, MapTag};
use crate::uncertain::Uncertain;
use std::ops::{BitAnd, BitOr, BitXor, Not};

macro_rules! lift_bool_op {
    ($op_trait:ident, $method:ident, $label:expr, $kernel_op:ident) => {
        impl $op_trait<Uncertain<bool>> for Uncertain<bool> {
            type Output = Uncertain<bool>;
            fn $method(self, rhs: Uncertain<bool>) -> Uncertain<bool> {
                let tag = Some(Map2Tag::Bool(BoolOp::$kernel_op));
                self.map2_tagged($label, &rhs, tag, |a: bool, b: bool| a.$method(b))
            }
        }

        impl $op_trait<&Uncertain<bool>> for Uncertain<bool> {
            type Output = Uncertain<bool>;
            fn $method(self, rhs: &Uncertain<bool>) -> Uncertain<bool> {
                let tag = Some(Map2Tag::Bool(BoolOp::$kernel_op));
                self.map2_tagged($label, rhs, tag, |a: bool, b: bool| a.$method(b))
            }
        }

        impl $op_trait<Uncertain<bool>> for &Uncertain<bool> {
            type Output = Uncertain<bool>;
            fn $method(self, rhs: Uncertain<bool>) -> Uncertain<bool> {
                let tag = Some(Map2Tag::Bool(BoolOp::$kernel_op));
                self.map2_tagged($label, &rhs, tag, |a: bool, b: bool| a.$method(b))
            }
        }

        impl $op_trait<&Uncertain<bool>> for &Uncertain<bool> {
            type Output = Uncertain<bool>;
            fn $method(self, rhs: &Uncertain<bool>) -> Uncertain<bool> {
                let tag = Some(Map2Tag::Bool(BoolOp::$kernel_op));
                self.map2_tagged($label, rhs, tag, |a: bool, b: bool| a.$method(b))
            }
        }
    };
}

lift_bool_op!(BitAnd, bitand, "and", And);
lift_bool_op!(BitOr, bitor, "or", Or);
lift_bool_op!(BitXor, bitxor, "xor", Xor);

impl Not for Uncertain<bool> {
    type Output = Uncertain<bool>;
    fn not(self) -> Uncertain<bool> {
        self.map_tagged("not", Some(MapTag::NotBool), |b: bool| !b)
    }
}

impl Not for &Uncertain<bool> {
    type Output = Uncertain<bool>;
    fn not(self) -> Uncertain<bool> {
        self.map_tagged("not", Some(MapTag::NotBool), |b: bool| !b)
    }
}

impl Uncertain<bool> {
    /// Lifted conjunction (named form of `&`).
    pub fn and(&self, other: &Uncertain<bool>) -> Uncertain<bool> {
        self & other
    }

    /// Lifted disjunction (named form of `|`).
    pub fn or(&self, other: &Uncertain<bool>) -> Uncertain<bool> {
        self | other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    #[test]
    fn truth_tables_on_point_masses() {
        let t = Uncertain::point(true);
        let f = Uncertain::point(false);
        let mut s = Session::sequential(0);
        assert!(s.sample(&(&t & &t)));
        assert!(!s.sample(&(&t & &f)));
        assert!(s.sample(&(&t | &f)));
        assert!(!s.sample(&(&f | &f)));
        assert!(s.sample(&(&t ^ &f)));
        assert!(!s.sample(&(&t ^ &t)));
        assert!(s.sample(&(!&f)));
        assert!(!s.sample(&(!&t)));
    }

    #[test]
    fn named_forms_match_operators() {
        let a = Uncertain::bernoulli(1.0).unwrap();
        let b = Uncertain::bernoulli(0.0).unwrap();
        let mut s = Session::sequential(1);
        assert!(!s.sample(&a.and(&b)));
        assert!(s.sample(&a.or(&b)));
    }

    #[test]
    fn independent_conjunction_multiplies() {
        let a = Uncertain::bernoulli(0.5).unwrap();
        let b = Uncertain::bernoulli(0.5).unwrap();
        let both = &a & &b;
        let mut s = Session::sequential(2);
        let p = both.probability_in(&mut s, 20_000);
        assert!((p - 0.25).abs() < 0.02, "p={p}");
    }

    #[test]
    fn correlated_conjunction_does_not_multiply() {
        // a & a has probability p, not p² — node identity again.
        let a = Uncertain::bernoulli(0.5).unwrap();
        let both = &a & &a;
        let mut s = Session::sequential(3);
        let p = both.probability_in(&mut s, 20_000);
        assert!((p - 0.5).abs() < 0.02, "p={p}");
    }

    #[test]
    fn law_of_excluded_middle_on_joint_samples() {
        // a | !a is ALWAYS true when evaluated jointly.
        let a = Uncertain::bernoulli(0.5).unwrap();
        let tautology = &a | &(!&a);
        let mut s = Session::sequential(4);
        for _ in 0..200 {
            assert!(s.sample(&tautology));
        }
    }

    #[test]
    fn de_morgan_holds_jointly() {
        let a = Uncertain::bernoulli(0.3).unwrap();
        let b = Uncertain::bernoulli(0.7).unwrap();
        let lhs = !&(&a & &b);
        let rhs = &(!&a) | &(!&b);
        let equal = lhs.eq_exact(&rhs);
        let mut s = Session::sequential(5);
        for _ in 0..200 {
            assert!(s.sample(&equal));
        }
    }
}
