//! # `Uncertain<T>` — a first-order type for uncertain data
//!
//! A from-scratch Rust implementation of the programming abstraction from
//! *Uncertain\<T\>: A First-Order Type for Uncertain Data* (Bornholt,
//! Mytkowicz, McKinley — ASPLOS 2014).
//!
//! An [`Uncertain<T>`] encapsulates a random variable of type `T`:
//!
//! * **Leaves** are known distributions exposed by expert developers as
//!   *sampling functions* ([`Uncertain::from_distribution`],
//!   [`Uncertain::from_fn`], or the [`Uncertain::normal`]-style shortcuts).
//! * **Computation** with the usual operators (`+ - * /`, comparisons,
//!   `& | !`) lazily builds a **Bayesian network** — a DAG whose nodes are
//!   random variables and whose edges are conditional dependences. Nothing
//!   is sampled until the program asks a question.
//! * **Shared dependences are tracked** (the paper's Fig. 8 "echoes static
//!   single assignment"): two uses of the same variable are perfectly
//!   correlated, so `x.clone() - x` is exactly zero, not a widened
//!   distribution.
//! * **Conditionals evaluate evidence**: a comparison yields
//!   `Uncertain<bool>` (a Bernoulli whose parameter is the evidence for the
//!   condition), and [`Uncertain::pr`]/[`Uncertain::is_probable`]
//!   decide it at runtime with Wald's sequential probability ratio test,
//!   drawing only as many samples as this particular conditional needs
//!   (§4.3).
//! * **Estimates improve with domain knowledge**: [`Uncertain::weight_by`]
//!   applies a Bayesian prior by sampling–importance–resampling, and
//!   [`Uncertain::condition_on`] applies hard evidence by rejection (§3.5).
//!
//! # Quick start
//!
//! Queries run inside a [`Session`] — the evaluation runtime that caches
//! compiled plans across calls, owns the seeding policy, and shards large
//! sample batches across worker threads:
//!
//! ```
//! use uncertain_core::{Session, Uncertain};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An expert exposes two noisy measurements…
//! let a = Uncertain::normal(4.0, 1.0)?;
//! let b = Uncertain::normal(5.0, 1.0)?;
//!
//! // …an application computes with them as if they were plain numbers…
//! let c = &a + &b; // a Bayesian network, not a number
//!
//! // …and asks calibrated questions instead of reading off point values.
//! let mut session = Session::seeded(42);
//! let over_five = c.gt(5.0); // Uncertain<bool>: evidence, not a bool
//! assert!(session.is_probable(&over_five)); // Pr[c > 5] > 0.5
//! assert!(!session.pr(&c.gt(12.0), 0.9));   // not 90% sure c > 12
//!
//! // The expected-value operator E projects back to a plain number.
//! let e = session.e(&c, 1000);
//! assert!((e - 9.0).abs() < 0.2);
//!
//! // Re-deciding the same conditional reuses its cached evaluation plan.
//! assert!(session.is_probable(&over_five));
//! assert!(session.cache_stats().hits >= 1);
//! # Ok(())
//! # }
//! ```
//!
//! The same queries exist as methods on [`Uncertain`] itself: the
//! ergonomic forms (`c.gt(5.0).is_probable()`) use the thread's ambient
//! session, and `*_in(&mut Session, ..)` forms name one explicitly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bayes;
mod compare;
mod condition;
mod context;
mod error;
mod evaluator;
mod exact;
mod expect;
mod graph;
mod kernel;
mod logic;
mod math;
mod node;
#[cfg(feature = "obs")]
mod obs;
mod ops;
mod plan;
mod runtime;
#[cfg(feature = "legacy-sampler")]
mod sampler;
mod uncertain;
mod wire;

pub use condition::{
    EvalConfig, EvalConfigBuilder, EvalStrategy, HypothesisOutcome, InconclusiveError, Provenance,
    StatsOutcome,
};
pub use error::{ConfigError, Error, NotAnalyticError, ServeError, WireError};
pub use evaluator::Evaluator;
pub use exact::{BoolLaw, ExactMethod, ScalarLaw};
pub use graph::{NetworkView, NodeMeta};
pub use node::NodeId;
#[cfg(feature = "obs")]
pub use obs::{
    DecisionTrace, Dispatch, InstrCost, KernelProfile, KindCost, LeafKindCost, NodeCost, Profile,
    Recorder, StoppingReason, TracePoint,
};
pub use plan::{ParSampler, Plan};
pub use runtime::{CacheStats, Session, DEFAULT_CACHE_CAPACITY};
#[cfg(feature = "legacy-sampler")]
pub use sampler::Sampler;
pub use uncertain::{IntoUncertain, Uncertain, Value};
pub use wire::WireGraph;

// Re-export the substrate crates whose types appear in this crate's API,
// so downstream users need only one dependency.
pub use uncertain_dist as dist;
pub use uncertain_stats as stats;

/// The common imports in one line: `use uncertain_core::prelude::*;`.
///
/// # Examples
///
/// ```
/// use uncertain_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(0.0, 1.0)?;
/// let mut session = Session::seeded(0);
/// assert!(x.lt(5.0).is_probable_in(&mut session));
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    #[cfg(feature = "legacy-sampler")]
    pub use crate::Sampler;
    pub use crate::{
        CacheStats, ConfigError, Error, EvalConfig, EvalConfigBuilder, EvalStrategy, Evaluator,
        ExactMethod, HypothesisOutcome, InconclusiveError, IntoUncertain, NetworkView,
        NotAnalyticError, ParSampler, Plan, Provenance, ServeError, Session, StatsOutcome,
        Uncertain,
    };
    #[cfg(feature = "obs")]
    pub use crate::{DecisionTrace, Recorder, StoppingReason};
    pub use uncertain_dist::{Continuous, Discrete, Distribution};
}
