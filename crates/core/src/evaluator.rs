//! A reusable evaluator for one network — the paper's "compile at the
//! conditional" fast path, made literal.
//!
//! [`Sampler`](crate::Sampler) tree-walks the network with a fresh
//! evaluation context per joint sample, which is the right default for
//! one-off queries. A conditional, however, samples the *same* network tens
//! to hundreds of times (§4.3); an [`Evaluator`] compiles the network once
//! into a [`Plan`] — dense slot indices instead of a `NodeId` hash map, a
//! flat reusable arena instead of per-sample boxing — and reuses one
//! context across samples. This is the practical payoff of the paper's
//! observation that "the runtime … much like a JIT, compiles those
//! expression trees to executable code at conditionals."

use crate::condition::{EvalConfig, EvalStrategy, HypothesisOutcome, Provenance};
use crate::context::SampleContext;
use crate::error::{Error, NotAnalyticError};
use crate::exact::{self, BoolLaw};
use crate::kernel::{Kernel, KernelState, KERNEL_CHUNK};
use crate::node::NodeInfo;
#[cfg(feature = "obs")]
use crate::obs::{kind_of, NodeCost, Profile};
use crate::plan::{sample_seed, Plan};
use crate::runtime::Session;
use crate::uncertain::{Uncertain, Value};
use std::sync::Arc;
use uncertain_stats::{SequentialTest, TestDecision};

/// Draws repeated joint samples of one pinned network through a compiled
/// [`Plan`] with a reused evaluation context.
///
/// Semantically identical to calling [`Sampler::sample`](crate::Sampler::sample)
/// in a loop (each call is one independent joint sample; sharing within a
/// sample is preserved); the difference is that the per-node hash-map
/// probes, heap boxing, and downcasts of the tree-walk interpreter are gone
/// from the inner loop.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Evaluator, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(0.0, 1.0)?;
/// let sum = &x + &x; // shared X: always exactly 2x
/// let mut eval = Evaluator::new(&sum, 7);
/// let a = eval.sample();
/// let b = eval.sample();
/// assert_ne!(a, b, "independent joint samples");
/// # Ok(())
/// # }
/// ```
pub struct Evaluator<T> {
    network: Uncertain<T>,
    plan: Arc<Plan<T>>,
    /// The columnar twin of `plan`, when every reachable node lowers to
    /// the instruction tape. Batch draws run here; `None` falls back to
    /// the closure path.
    kernel: Option<Arc<Kernel<T>>>,
    /// Lazily-allocated register file for `kernel`, reused across batches.
    kernel_state: Option<KernelState>,
    /// Reusable per-chunk seed buffer for the kernel path.
    seed_buf: Vec<u64>,
    ctx: SampleContext,
    seed: u64,
    samples_drawn: u64,
    /// Next sample index of the indexed batch stream (see
    /// [`Evaluator::sample_batch`]).
    batch_cursor: u64,
    /// The last sequential test built by [`Evaluator::try_decide`], keyed
    /// by the config/threshold that produced it.
    cached_test: Option<(EvalConfig, f64, SequentialTest)>,
    /// The analytic verdict for the pinned network, computed at most once
    /// (outer `None` = never analyzed; inner `None` = analyzer declined).
    /// Only consulted by the boolean decision path.
    exact_law: Option<Option<BoolLaw>>,
}

impl<T: Value> std::fmt::Debug for Evaluator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("network", &self.network)
            .field("plan", &self.plan)
            .field("samples_drawn", &self.samples_drawn)
            .finish_non_exhaustive()
    }
}

impl<T: Value> Evaluator<T> {
    /// Compiles `network` and pins it with a deterministic RNG stream.
    pub fn new(network: &Uncertain<T>, seed: u64) -> Self {
        Self::with_plan(network.clone(), Arc::new(Plan::compile(network)), seed)
    }

    /// Builds an evaluator that **borrows the session's cached plan** for
    /// `network` (compiling into the cache on first use) instead of
    /// recompiling, and derives its deterministic seed from the session's
    /// seeding policy. This is the cheap way to pin a long-lived fast path
    /// for one network inside a session-based program.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Evaluator, Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(1.0, 1.0)?;
    /// let cond = x.gt(0.0); // Pr ≈ 0.84
    /// let mut session = Session::seeded(3);
    /// session.pr(&cond, 0.5); // plan now cached
    /// let mut eval = Evaluator::from_session(&mut session, &cond);
    /// assert_eq!(session.cache_stats().hits, 1, "evaluator reused the plan");
    /// assert!(eval.decide(0.5));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_session(session: &mut Session, network: &Uncertain<T>) -> Self {
        let (plan, kernel) = session.cached_compiled(network);
        let seed = session.derive_seed();
        Self::with_parts(network.clone(), plan, kernel, seed)
    }

    fn with_plan(network: Uncertain<T>, plan: Arc<Plan<T>>, seed: u64) -> Self {
        let kernel = Kernel::lower(&network).map(Arc::new);
        Self::with_parts(network, plan, kernel, seed)
    }

    fn with_parts(
        network: Uncertain<T>,
        plan: Arc<Plan<T>>,
        kernel: Option<Arc<Kernel<T>>>,
        seed: u64,
    ) -> Self {
        let mut ctx = SampleContext::from_seed(seed);
        plan.install(&mut ctx);
        Self {
            network,
            plan,
            kernel,
            kernel_state: None,
            seed_buf: Vec::new(),
            ctx,
            seed,
            samples_drawn: 0,
            batch_cursor: 0,
            cached_test: None,
            exact_law: None,
        }
    }

    /// Draws one joint sample from the evaluator's continuous RNG stream.
    pub fn sample(&mut self) -> T {
        self.samples_drawn += 1;
        self.plan.evaluate(&mut self.ctx)
    }

    /// Draws the next `n` joint samples of the evaluator's *indexed batch
    /// stream*: sample `i` (counted across all `sample_batch` calls) is
    /// seeded by a SplitMix64 mix of `(seed, i)`, so the sequence of batch
    /// samples depends only on the evaluator's seed — not on batch
    /// boundaries, and bitwise identical to what a
    /// [`ParSampler`](crate::ParSampler) with the same seed produces on any
    /// number of threads.
    pub fn sample_batch(&mut self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        self.sample_batch_into(&mut out, n);
        out
    }

    /// [`Evaluator::sample_batch`] into a caller-owned buffer: clears
    /// `out`, then fills it with the next `n` samples of the indexed batch
    /// stream. Steady-state callers (an SPRT pulling a batch per stopping
    /// check) reuse one buffer instead of allocating a `Vec` per batch.
    ///
    /// On networks the columnar kernel can express, the batch runs as
    /// column-at-a-time instruction loops; otherwise it falls back to the
    /// per-sample closure path. Both produce bitwise-identical streams.
    pub fn sample_batch_into(&mut self, out: &mut Vec<T>, n: usize) {
        out.clear();
        out.reserve(n);
        if let Some(kernel) = self.kernel.clone() {
            let state = self.kernel_state.get_or_insert_with(|| kernel.new_state());
            let mut done = 0;
            while done < n {
                let take = KERNEL_CHUNK.min(n - done);
                let base = self.batch_cursor + done as u64;
                self.seed_buf.clear();
                self.seed_buf
                    .extend((0..take as u64).map(|i| sample_seed(self.seed, base + i)));
                kernel.run_into(&self.seed_buf, state, out);
                done += take;
            }
        } else {
            for i in 0..n {
                self.ctx
                    .reseed(sample_seed(self.seed, self.batch_cursor + i as u64));
                out.push(self.plan.evaluate(&mut self.ctx));
            }
        }
        self.batch_cursor += n as u64;
        self.samples_drawn += n as u64;
    }

    /// Compiles `network` in **profiling mode**: every slotted node's
    /// closure is wrapped with a timer, and [`Evaluator::profile`] reports
    /// where sampling time goes — per node and per node kind. Sampled
    /// values are bitwise identical to an unprofiled evaluator with the
    /// same seed; only wall time changes (one `Instant` pair per node per
    /// joint sample), so profile a workload, not a production loop.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Evaluator, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(0.0, 1.0)?;
    /// let expr = (&x + &x).gt(0.0);
    /// let mut eval = Evaluator::profiled(&expr, 7);
    /// for _ in 0..100 { eval.sample(); }
    /// let profile = eval.profile().expect("profiling mode is on");
    /// // x, +, gt each drew once per joint sample; x was also re-read
    /// // once per sample by the second `+` operand.
    /// assert!(profile.entries.iter().all(|e| e.draws == 100));
    /// assert_eq!(profile.by_kind().len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    #[cfg(feature = "obs")]
    pub fn profiled(network: &Uncertain<T>, seed: u64) -> Self {
        let plan = Arc::new(Plan::compile_profiled(network));
        // No kernel: the per-node timers live in the plan's closures, so a
        // profiled evaluator must route batches through them too.
        let mut eval = Self::with_parts(network.clone(), plan, None, seed);
        eval.ctx.enable_profile(eval.plan.slot_count());
        eval
    }

    /// The per-node cost profile accumulated by a
    /// [`Evaluator::profiled`] evaluator, or `None` on an unprofiled one.
    /// Entries are sorted hottest-first; timings are inclusive of
    /// children, like flamegraph frames.
    #[cfg(feature = "obs")]
    pub fn profile(&self) -> Option<Profile> {
        let slots = self.ctx.profile_slots();
        if slots.is_empty() {
            return None;
        }
        let view = self.network.network();
        let mut entries: Vec<NodeCost> = self
            .plan
            .slots()
            .iter()
            .map(|(&id, &slot)| {
                let cost = slots.get(slot as usize).copied().unwrap_or_default();
                let (label, is_leaf) = view
                    .node(id)
                    .map(|meta| (meta.label.clone(), meta.is_leaf))
                    .unwrap_or_else(|| (format!("node {}", id.as_u64()), false));
                NodeCost {
                    id,
                    kind: kind_of(&label),
                    label,
                    is_leaf,
                    draws: cost.draws,
                    hits: cost.hits,
                    ns: cost.ns,
                }
            })
            .collect();
        entries.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.id.as_u64().cmp(&b.id.as_u64())));
        Some(Profile {
            entries,
            joint_samples: self.samples_drawn,
        })
    }

    /// Profiles the **columnar kernel** over the next `n` samples of the
    /// indexed batch stream: runs the tape with a timer around every
    /// instruction's column pass and reports exclusive per-instruction
    /// costs. Returns `None` when the network has a node the tape cannot
    /// express (see [`Evaluator::profiled`] for the closure-path profile,
    /// which covers every network).
    ///
    /// The drawn samples advance the batch cursor exactly like
    /// [`Evaluator::sample_batch`], so the stream stays reproducible.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Evaluator, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(0.0, 1.0)?;
    /// let expr = (&x + &x).gt(0.0);
    /// let mut eval = Evaluator::new(&expr, 7);
    /// let profile = eval.kernel_profile(1024).expect("tape-expressible");
    /// assert_eq!(profile.samples, 1024);
    /// assert_eq!(profile.instrs.len(), 4); // x, +, point(0), >
    /// // The optimizer found nothing to remove in this tape …
    /// assert_eq!(profile.pre_opt_instrs, profile.post_opt_instrs());
    /// // … and the one leaf is a vectorized Gaussian column fill.
    /// let leaves = profile.by_leaf_kind();
    /// assert_eq!(leaves.len(), 1);
    /// assert!(leaves[0].vectorized);
    /// # Ok(())
    /// # }
    /// ```
    #[cfg(feature = "obs")]
    pub fn kernel_profile(&mut self, n: usize) -> Option<crate::obs::KernelProfile> {
        let kernel = match &self.kernel {
            Some(k) => Arc::clone(k),
            None => Arc::new(Kernel::lower(&self.network)?),
        };
        let mut state = kernel.new_state();
        let mut ns = vec![0u64; kernel.len()];
        let mut out: Vec<T> = Vec::with_capacity(KERNEL_CHUNK.min(n));
        let mut done = 0;
        while done < n {
            let take = KERNEL_CHUNK.min(n - done);
            let base = self.batch_cursor + done as u64;
            self.seed_buf.clear();
            self.seed_buf
                .extend((0..take as u64).map(|i| sample_seed(self.seed, base + i)));
            out.clear();
            kernel.run_profiled_into(&self.seed_buf, &mut state, &mut out, &mut ns);
            done += take;
        }
        self.batch_cursor += n as u64;
        self.samples_drawn += n as u64;
        Some(kernel.profile(&ns, n as u64))
    }

    /// Joint samples drawn so far.
    pub fn samples_drawn(&self) -> u64 {
        self.samples_drawn
    }

    /// The pinned network.
    pub fn network(&self) -> &Uncertain<T> {
        &self.network
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan<T> {
        &self.plan
    }
}

impl Evaluator<bool> {
    /// Runs the SPRT for `Pr[cond] > threshold` on the pinned Bernoulli,
    /// drawing batches through [`Evaluator::sample_batch`]. The built
    /// [`SequentialTest`] is cached and reused across calls with the same
    /// `config`/`threshold` (the common case: one conditional site decided
    /// repeatedly).
    ///
    /// When `config.strategy` admits the analytic backend and the pinned
    /// network is recognized, the decision comes back in closed form with
    /// zero samples drawn (the batch stream does not advance) and
    /// [`Provenance::Exact`] attached; otherwise it is decided by sampling
    /// exactly as under [`EvalStrategy::SamplingOnly`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Stats`] if `threshold` or `config` are out of
    /// range (e.g. `threshold ∉ (0, 1)`), and [`Error::NotAnalytic`] if
    /// [`EvalStrategy::ExactOnly`] was demanded on an unrecognized graph.
    pub fn try_decide(
        &mut self,
        config: &EvalConfig,
        threshold: f64,
    ) -> Result<HypothesisOutcome, Error> {
        let test = match &self.cached_test {
            Some((c, t, test)) if *c == *config && *t == threshold => *test,
            _ => {
                let test = config.sequential_test(threshold)?;
                self.cached_test = Some((*config, threshold, test));
                test
            }
        };
        if config.strategy != EvalStrategy::SamplingOnly {
            if self.exact_law.is_none() {
                let root = self.network.node().clone() as Arc<dyn NodeInfo>;
                self.exact_law = Some(exact::analyze_bool(&root));
            }
            if let Some(law) = self.exact_law.unwrap_or(None) {
                return Ok(HypothesisOutcome {
                    threshold,
                    accepted: law.p > threshold,
                    conclusive: (law.p - threshold).abs() > config.delta,
                    samples: 0,
                    estimate: law.p,
                    provenance: Provenance::Exact { method: law.method },
                });
            }
            if config.strategy == EvalStrategy::ExactOnly {
                return Err(NotAnalyticError { query: "decide" }.into());
            }
        }
        let mut buf: Vec<bool> = Vec::new();
        let outcome = test
            .run_counted_while(
                |k| {
                    self.sample_batch_into(&mut buf, k);
                    buf.iter().filter(|&&b| b).count() as u64
                },
                |_| true,
            )
            .expect("unconditional keep_going never aborts");
        Ok(HypothesisOutcome {
            threshold,
            accepted: outcome.decision == TestDecision::AcceptAlternative,
            conclusive: outcome.conclusive,
            samples: outcome.samples,
            estimate: outcome.estimate,
            provenance: Provenance::Sampled {
                samples: outcome.samples,
            },
        })
    }

    /// Runs the SPRT for `Pr[cond] > threshold` with default configuration
    /// — the conditional fast path (same semantics as
    /// [`Uncertain::evaluate_in`](crate::Uncertain::evaluate_in) with
    /// default configuration, minus the per-sample interpreter overhead).
    ///
    /// # Panics
    ///
    /// Panics if `threshold ∉ (0, 1)`.
    pub fn decide(&mut self, threshold: f64) -> bool {
        self.try_decide(&EvalConfig::default(), threshold)
            .expect("invalid conditional threshold")
            .to_bool()
    }
}

impl Evaluator<f64> {
    /// The `E` operator on the pinned network.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expected_value(&mut self, n: usize) -> f64 {
        assert!(n > 0, "expected value needs at least one sample");
        let mut acc = 0.0;
        for _ in 0..n {
            acc += self.sample();
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::ParSampler;

    #[test]
    fn from_session_matches_standalone_evaluator() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let expr = &x * &x;
        let mut session = Session::seeded(31);
        let mut from_session = Evaluator::from_session(&mut session, &expr);
        // The derived seed is the session's next query seed; a standalone
        // evaluator with that same seed must produce the same stream.
        let mut session2 = Session::seeded(31);
        let seed = session2.derive_seed();
        let mut standalone = Evaluator::new(&expr, seed);
        assert_eq!(from_session.sample_batch(64), standalone.sample_batch(64));
    }

    #[test]
    fn matches_sampler_distribution() {
        let x = Uncertain::normal(3.0, 1.5).unwrap();
        let expr = &x * 2.0 + 1.0;
        let mut eval = Evaluator::new(&expr, 1);
        let mean = eval.expected_value(20_000);
        assert!((mean - 7.0).abs() < 0.05, "mean={mean}");
        assert_eq!(eval.samples_drawn(), 20_000);
    }

    #[test]
    fn preserves_shared_dependence() {
        let x = Uncertain::uniform(1.0, 5.0).unwrap();
        let zero = &x - &x;
        let mut eval = Evaluator::new(&zero, 2);
        for _ in 0..500 {
            assert_eq!(eval.sample(), 0.0);
        }
    }

    #[test]
    fn consecutive_samples_are_independent() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut eval = Evaluator::new(&x, 3);
        let first = eval.sample();
        let distinct = (0..50).filter(|_| eval.sample() != first).count();
        assert!(distinct > 45);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut a = Evaluator::new(&x, 9);
        let mut b = Evaluator::new(&x, 9);
        for _ in 0..20 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn decide_matches_uncertain_semantics() {
        let likely = Uncertain::bernoulli(0.9).unwrap();
        let mut eval = Evaluator::new(&likely, 4);
        assert!(eval.decide(0.5));
        let mut eval = Evaluator::new(&(!&likely), 5);
        assert!(!eval.decide(0.5));
    }

    #[test]
    fn try_decide_reports_errors_instead_of_panicking() {
        let b = Uncertain::bernoulli(0.5).unwrap();
        let mut eval = Evaluator::new(&b, 6);
        assert!(eval.try_decide(&EvalConfig::default(), 1.5).is_err());
        assert!(eval.try_decide(&EvalConfig::default(), -0.1).is_err());
        let ok = eval.try_decide(&EvalConfig::default(), 0.5).unwrap();
        assert!(ok.samples > 0);
    }

    #[test]
    #[should_panic(expected = "invalid conditional threshold")]
    fn decide_panics_on_bad_threshold() {
        let b = Uncertain::bernoulli(0.5).unwrap();
        let mut eval = Evaluator::new(&b, 6);
        let _ = eval.decide(2.0);
    }

    #[test]
    fn try_decide_reuses_the_cached_test() {
        let likely = Uncertain::bernoulli(0.95).unwrap();
        let mut eval = Evaluator::new(&likely, 7);
        let cfg = EvalConfig::default();
        let first = eval.try_decide(&cfg, 0.5).unwrap();
        assert!(eval.cached_test.is_some());
        let second = eval.try_decide(&cfg, 0.5).unwrap();
        assert!(first.accepted && second.accepted);
        // A different threshold rebuilds (and re-caches) the test.
        let _ = eval.try_decide(&cfg, 0.6).unwrap();
        assert_eq!(eval.cached_test.as_ref().unwrap().1, 0.6);
    }

    #[test]
    fn sample_batch_is_batch_boundary_invariant() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut whole = Evaluator::new(&x, 11);
        let all = whole.sample_batch(50);
        let mut pieces = Evaluator::new(&x, 11);
        let mut joined = pieces.sample_batch(13);
        joined.extend(pieces.sample_batch(37));
        assert_eq!(all, joined);
    }

    #[test]
    fn sample_batch_matches_par_sampler() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let expr = &x * &x;
        let mut eval = Evaluator::new(&expr, 21);
        let serial = eval.sample_batch(64);
        let parallel = ParSampler::with_threads(&expr, 21, 4).sample_batch(64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn agrees_statistically_with_sampler() {
        // Same distribution through both paths.
        let u = Uncertain::uniform(0.0, 1.0).unwrap();
        let cond = u.gt(0.3);
        let mut session = Session::sequential(6);
        let via_sampler = session.probability(&cond, 20_000);
        let mut eval = Evaluator::new(&cond, 7);
        let via_eval = (0..20_000).filter(|_| eval.sample()).count() as f64 / 20_000.0;
        assert!((via_sampler - via_eval).abs() < 0.02);
    }
}
