//! A reusable evaluator for one network — the paper's "compile at the
//! conditional" fast path.
//!
//! [`Sampler`](crate::Sampler) builds a fresh evaluation context per joint
//! sample, which is the right default for one-off queries. A conditional,
//! however, samples the *same* network tens to hundreds of times (§4.3);
//! an [`Evaluator`] pins the network and reuses one context — clearing the
//! memo table in place instead of reallocating it — which is the practical
//! payoff of the paper's observation that "the runtime … much like a JIT,
//! compiles those expression trees to executable code at conditionals."

use crate::context::SampleContext;
use crate::uncertain::{Uncertain, Value};
use uncertain_stats::{SequentialTest, TestDecision};

/// Draws repeated joint samples of one pinned network with a reused
/// evaluation context.
///
/// Semantically identical to calling [`Sampler::sample`](crate::Sampler::sample)
/// in a loop (each call is one independent joint sample; sharing within a
/// sample is preserved); the difference is allocation churn.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Evaluator, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(0.0, 1.0)?;
/// let sum = &x + &x; // shared X: always exactly 2x
/// let mut eval = Evaluator::new(&sum, 7);
/// let a = eval.sample();
/// let b = eval.sample();
/// assert_ne!(a, b, "independent joint samples");
/// # Ok(())
/// # }
/// ```
pub struct Evaluator<T> {
    network: Uncertain<T>,
    ctx: SampleContext,
    samples_drawn: u64,
}

impl<T: Value> std::fmt::Debug for Evaluator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("network", &self.network)
            .field("samples_drawn", &self.samples_drawn)
            .finish_non_exhaustive()
    }
}

impl<T: Value> Evaluator<T> {
    /// Pins `network` with a deterministic RNG stream.
    pub fn new(network: &Uncertain<T>, seed: u64) -> Self {
        Self {
            network: network.clone(),
            ctx: SampleContext::from_seed(seed),
            samples_drawn: 0,
        }
    }

    /// Draws one joint sample.
    pub fn sample(&mut self) -> T {
        self.ctx.begin_joint_sample();
        self.samples_drawn += 1;
        self.network.node().sample_value(&mut self.ctx)
    }

    /// Joint samples drawn so far.
    pub fn samples_drawn(&self) -> u64 {
        self.samples_drawn
    }

    /// The pinned network.
    pub fn network(&self) -> &Uncertain<T> {
        &self.network
    }
}

impl Evaluator<bool> {
    /// Runs the SPRT for `Pr[cond] > threshold` on the pinned Bernoulli —
    /// the conditional fast path (same semantics as
    /// [`Uncertain::evaluate`](crate::Uncertain::evaluate) with default
    /// configuration, minus the per-sample context allocation).
    ///
    /// # Panics
    ///
    /// Panics if `threshold ∉ (0, 1)`.
    pub fn decide(&mut self, threshold: f64) -> bool {
        let test = SequentialTest::at_threshold(threshold)
            .expect("invalid conditional threshold");
        let outcome = test.run(|| self.sample());
        outcome.decision == TestDecision::AcceptAlternative
    }
}

impl Evaluator<f64> {
    /// The `E` operator on the pinned network.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expected_value(&mut self, n: usize) -> f64 {
        assert!(n > 0, "expected value needs at least one sample");
        let mut acc = 0.0;
        for _ in 0..n {
            acc += self.sample();
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sampler;

    #[test]
    fn matches_sampler_distribution() {
        let x = Uncertain::normal(3.0, 1.5).unwrap();
        let expr = &x * 2.0 + 1.0;
        let mut eval = Evaluator::new(&expr, 1);
        let mean = eval.expected_value(20_000);
        assert!((mean - 7.0).abs() < 0.05, "mean={mean}");
        assert_eq!(eval.samples_drawn(), 20_000);
    }

    #[test]
    fn preserves_shared_dependence() {
        let x = Uncertain::uniform(1.0, 5.0).unwrap();
        let zero = &x - &x;
        let mut eval = Evaluator::new(&zero, 2);
        for _ in 0..500 {
            assert_eq!(eval.sample(), 0.0);
        }
    }

    #[test]
    fn consecutive_samples_are_independent() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut eval = Evaluator::new(&x, 3);
        let first = eval.sample();
        let distinct = (0..50).filter(|_| eval.sample() != first).count();
        assert!(distinct > 45);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut a = Evaluator::new(&x, 9);
        let mut b = Evaluator::new(&x, 9);
        for _ in 0..20 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn decide_matches_uncertain_semantics() {
        let likely = Uncertain::bernoulli(0.9).unwrap();
        let mut eval = Evaluator::new(&likely, 4);
        assert!(eval.decide(0.5));
        let mut eval = Evaluator::new(&(!&likely), 5);
        assert!(!eval.decide(0.5));
    }

    #[test]
    fn agrees_statistically_with_sampler() {
        // Same distribution through both paths.
        let u = Uncertain::uniform(0.0, 1.0).unwrap();
        let cond = u.gt(0.3);
        let mut sampler = Sampler::seeded(6);
        let via_sampler = cond.probability_with(&mut sampler, 20_000);
        let mut eval = Evaluator::new(&cond, 7);
        let via_eval =
            (0..20_000).filter(|_| eval.sample()).count() as f64 / 20_000.0;
        assert!((via_sampler - via_eval).abs() < 0.02);
    }
}
