//! Lifted comparison operators (paper Table 1: `< > ≤ ≥` of type
//! `U<T> → U<T> → U<Bool>`).
//!
//! Rust's `PartialOrd` cannot return anything but `bool`, so the lifted
//! comparisons are named methods: [`Uncertain::gt`], [`Uncertain::lt`],
//! [`Uncertain::ge`], [`Uncertain::le`]. Each returns an
//! `Uncertain<bool>` — a Bernoulli whose parameter is the *evidence* for
//! the condition (paper §3.4, Fig. 9) — which the conditional operators in
//! [`crate::condition`] then decide with a hypothesis test.

use crate::kernel::{cmp_tag_for, CmpOp};
use crate::uncertain::{IntoUncertain, Uncertain, Value};

impl<T: Value + PartialOrd> Uncertain<T> {
    /// Evidence that `self > other`.
    ///
    /// `other` may be another `Uncertain<T>`, a reference to one, or a plain
    /// `T` (coerced to a point mass), mirroring the paper's
    /// `Speed > 4` syntax.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let speed = Uncertain::normal(5.0, 1.0)?;
    /// let mut s = Session::seeded(0);
    /// assert!(speed.gt(4.0).is_probable_in(&mut s));
    /// # Ok(())
    /// # }
    /// ```
    pub fn gt(&self, other: impl IntoUncertain<T>) -> Uncertain<bool> {
        let tag = cmp_tag_for::<T>(CmpOp::Gt);
        self.map2_tagged(">", &other.into_uncertain(), tag, |a, b| a > b)
    }

    /// Evidence that `self < other`.
    pub fn lt(&self, other: impl IntoUncertain<T>) -> Uncertain<bool> {
        let tag = cmp_tag_for::<T>(CmpOp::Lt);
        self.map2_tagged("<", &other.into_uncertain(), tag, |a, b| a < b)
    }

    /// Evidence that `self ≥ other`.
    pub fn ge(&self, other: impl IntoUncertain<T>) -> Uncertain<bool> {
        let tag = cmp_tag_for::<T>(CmpOp::Ge);
        self.map2_tagged(">=", &other.into_uncertain(), tag, |a, b| a >= b)
    }

    /// Evidence that `self ≤ other`.
    pub fn le(&self, other: impl IntoUncertain<T>) -> Uncertain<bool> {
        let tag = cmp_tag_for::<T>(CmpOp::Le);
        self.map2_tagged("<=", &other.into_uncertain(), tag, |a, b| a <= b)
    }

    /// Evidence that `lo ≤ self ≤ hi` — the banded comparison used where
    /// the paper writes `2 <= NumLive && NumLive <= 3`.
    ///
    /// Evaluated as a *single* node, so it is exactly the conjunction on
    /// correlated samples.
    pub fn between(&self, lo: T, hi: T) -> Uncertain<bool> {
        self.map("between", move |v| v >= lo && v <= hi)
    }
}

impl<T: Value + PartialEq> Uncertain<T> {
    /// Evidence that `self == other`, sample by sample.
    ///
    /// For continuous `T` this event has probability zero — "just as
    /// programs should not compare floating point numbers for equality,
    /// neither should they compare distributions for equality" (paper
    /// §3.4). Prefer [`Uncertain::eq_within`] (continuous) or
    /// [`Uncertain::rounds_to`] (counts); this exact form is intended for
    /// genuinely discrete `T`.
    pub fn eq_exact(&self, other: impl IntoUncertain<T>) -> Uncertain<bool> {
        let tag = cmp_tag_for::<T>(CmpOp::Eq);
        self.map2_tagged("==", &other.into_uncertain(), tag, |a, b| a == b)
    }

    /// Evidence that `self != other`, sample by sample. See
    /// [`Uncertain::eq_exact`] for the continuous-type caveat.
    pub fn ne_exact(&self, other: impl IntoUncertain<T>) -> Uncertain<bool> {
        let tag = cmp_tag_for::<T>(CmpOp::Ne);
        self.map2_tagged("!=", &other.into_uncertain(), tag, |a, b| a != b)
    }
}

impl Uncertain<f64> {
    /// Evidence that `|self − other| ≤ tolerance` — the meaningful
    /// equality question for continuous data.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(3.0, 0.1)?;
    /// let mut s = Session::seeded(1);
    /// assert!(x.eq_within(3.0, 0.5).is_probable_in(&mut s));
    /// assert!(!x.eq_within(4.0, 0.5).is_probable_in(&mut s));
    /// # Ok(())
    /// # }
    /// ```
    pub fn eq_within(&self, other: f64, tolerance: f64) -> Uncertain<bool> {
        self.map("≈", move |v| (v - other).abs() <= tolerance)
    }

    /// Evidence that `self` rounds to the integer `k` — i.e. lies in
    /// `[k − 0.5, k + 0.5)`.
    ///
    /// This is the calibrated reading of `NumLive == 3` from the paper's
    /// SensorLife case study (§5.2): the live-neighbor count is a noisy
    /// *real*, so "equals 3" must mean "nearest integer is 3".
    pub fn rounds_to(&self, k: i64) -> Uncertain<bool> {
        self.map("rounds_to", move |v| {
            v >= k as f64 - 0.5 && v < k as f64 + 0.5
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    #[test]
    fn comparisons_on_point_masses_are_deterministic() {
        let five = Uncertain::point(5.0);
        let three = Uncertain::point(3.0);
        let mut s = Session::sequential(0);
        assert!(s.sample(&five.gt(&three)));
        assert!(s.sample(&five.gt(3.0)));
        assert!(!s.sample(&five.lt(&three)));
        assert!(s.sample(&five.ge(5.0)));
        assert!(s.sample(&five.le(5.0)));
        assert!(!s.sample(&five.le(4.9)));
    }

    #[test]
    fn evidence_matches_analytic_probability() {
        // Pr[N(0,1) > 0] = 0.5; Pr[N(0,1) > 1] ≈ 0.159.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Session::sequential(1);
        let p0 = x.gt(0.0).probability_in(&mut s, 20_000);
        let p1 = x.gt(1.0).probability_in(&mut s, 20_000);
        assert!((p0 - 0.5).abs() < 0.02, "p0={p0}");
        assert!((p1 - 0.1587).abs() < 0.02, "p1={p1}");
    }

    #[test]
    fn comparing_correlated_variables_uses_joint_samples() {
        // x vs x + 1 is ALWAYS false for gt: the same x on both sides.
        let x = Uncertain::normal(0.0, 5.0).unwrap();
        let shifted = &x + 1.0;
        let gt = x.gt(&shifted);
        let mut s = Session::sequential(2);
        for _ in 0..200 {
            assert!(!s.sample(&gt));
        }
    }

    #[test]
    fn between_matches_conjunction_semantics() {
        let x = Uncertain::uniform(0.0, 10.0).unwrap();
        let banded = x.between(2.0, 3.0);
        let mut s = Session::sequential(3);
        let p = banded.probability_in(&mut s, 20_000);
        assert!((p - 0.1).abs() < 0.01, "p={p}");
    }

    #[test]
    fn eq_exact_on_discrete_type() {
        let die = Uncertain::from_fn("d6", |rng| {
            use rand::Rng;
            rng.gen_range(1..=6_i32)
        });
        let mut s = Session::sequential(4);
        let p = die.eq_exact(3).probability_in(&mut s, 30_000);
        assert!((p - 1.0 / 6.0).abs() < 0.01, "p={p}");
        let q = die.ne_exact(3).probability_in(&mut s, 30_000);
        assert!((q - 5.0 / 6.0).abs() < 0.01, "q={q}");
    }

    #[test]
    fn eq_exact_on_continuous_is_measure_zero() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Session::sequential(5);
        let p = x.eq_exact(&y).probability_in(&mut s, 5000);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn rounds_to_bands() {
        let x = Uncertain::point(2.6);
        let mut s = Session::sequential(6);
        assert!(s.sample(&x.rounds_to(3)));
        assert!(!s.sample(&x.rounds_to(2)));
    }

    #[test]
    fn eq_within_tolerance() {
        let x = Uncertain::point(1.05);
        let mut s = Session::sequential(7);
        assert!(s.sample(&x.eq_within(1.0, 0.1)));
        assert!(!s.sample(&x.eq_within(1.0, 0.01)));
    }
}
