//! The evaluation operator `E` and sample-based statistics.
//!
//! For code that needs a total order (sorting, printing), the paper
//! provides the expected-value operator `E :: U<T> → T` (Table 1, §3.4),
//! implemented as a fixed-size sample mean (§4.3). Because the runtime
//! already draws samples, richer summaries (variance, quantiles, coverage
//! intervals — the paper's 95% confidence intervals on speed) come for
//! free through [`Uncertain::stats_in`].
//!
//! As everywhere on the eval surface: the ergonomic method
//! ([`Uncertain::expected_value`]) uses the thread's ambient [`Session`],
//! `*_in(&mut Session, ..)` is the explicit deterministic form, and the
//! old `*_with(&mut Sampler, ..)` names are deprecated shims.

use crate::error::Error;
use crate::runtime::Session;
#[cfg(feature = "legacy-sampler")]
use crate::sampler::Sampler;
use crate::uncertain::{Uncertain, Value};
use uncertain_stats::{Histogram, StatsError, Summary};

impl Uncertain<f64> {
    /// The paper's `E` operator: the mean of `n` joint samples, in the
    /// thread's ambient [`Session`]. Use [`Uncertain::expected_value_in`]
    /// for deterministic evaluation in a named session.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expected_value(&self, n: usize) -> f64 {
        Session::with_ambient(|s| s.e(self, n))
    }

    /// The `E` operator in a named session (deterministic when the session
    /// is seeded; shards across the session's workers on large `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expected_value_in(&self, session: &mut Session, n: usize) -> f64 {
        session.e(self, n)
    }

    /// Deprecated `Sampler` form of [`Uncertain::expected_value_in`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(since = "0.2.0", note = "use `expected_value_in(&mut Session, n)`")]
    pub fn expected_value_with(&self, sampler: &mut Sampler, n: usize) -> f64 {
        sampler.session_mut().e(self, n)
    }

    /// A full descriptive summary (mean, variance, quantiles, coverage
    /// intervals) from `n` joint samples.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`, sampling produced non-finite values
    /// (e.g. a division by a distribution with mass near zero), or the
    /// session demanded [`EvalStrategy::ExactOnly`](crate::EvalStrategy)
    /// on a graph the analytic backend cannot summarize.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(2.0, 1.0)?;
    /// let mut session = Session::seeded(0);
    /// let stats = x.stats_in(&mut session, 4000)?;
    /// assert!((stats.mean() - 2.0).abs() < 0.1);
    /// let (lo, hi) = stats.coverage_interval(0.95);
    /// assert!(lo < 0.5 && hi > 3.5); // ≈ 2 ± 1.96
    /// # Ok(())
    /// # }
    /// ```
    pub fn stats_in(&self, session: &mut Session, n: usize) -> Result<Summary, Error> {
        session.stats(self, n)
    }

    /// Deprecated `Sampler` form of [`Uncertain::stats_in`].
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or sampling produced non-finite
    /// values.
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(since = "0.2.0", note = "use `stats_in(&mut Session, n)`")]
    pub fn stats_with(&self, sampler: &mut Sampler, n: usize) -> Result<Summary, Error> {
        sampler.session_mut().stats(self, n)
    }

    /// A sampled histogram of this variable on `[low, high)` — the
    /// terminal "plot" the figure binaries print.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the histogram bounds/bins are invalid.
    pub fn histogram_in(
        &self,
        session: &mut Session,
        n: usize,
        low: f64,
        high: f64,
        bins: usize,
    ) -> Result<Histogram, StatsError> {
        session.histogram(self, n, low, high, bins)
    }

    /// Deprecated `Sampler` form of [`Uncertain::histogram_in`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the histogram bounds/bins are invalid.
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(
        since = "0.2.0",
        note = "use `histogram_in(&mut Session, n, low, high, bins)`"
    )]
    pub fn histogram_with(
        &self,
        sampler: &mut Sampler,
        n: usize,
        low: f64,
        high: f64,
        bins: usize,
    ) -> Result<Histogram, StatsError> {
        sampler.session_mut().histogram(self, n, low, high, bins)
    }

    /// The `E` operator evaluated on several OS threads. Superseded by a
    /// session with workers: [`Session::with_threads`] shards large
    /// batches with the same per-index seeding, so
    /// `Session::seeded(seed).with_threads(threads)` gives the same
    /// determinism guarantees through the cached-plan path.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `threads == 0`.
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(
        since = "0.2.0",
        note = "use `expected_value_in` on a `Session::seeded(..).with_threads(..)`"
    )]
    pub fn expected_value_parallel(&self, seed: u64, n: usize, threads: usize) -> f64 {
        assert!(n > 0, "expected value needs at least one sample");
        assert!(threads > 0, "need at least one thread");
        // Kept on the ParSampler path so historical (seed, n) results are
        // bitwise stable for existing callers.
        let values = crate::plan::ParSampler::with_threads(self, seed, threads).sample_batch(n);
        values.iter().sum::<f64>() / n as f64
    }
}

impl<T: Value> Uncertain<T> {
    /// Generalized expectation: the mean of `score` over `n` joint samples.
    ///
    /// This is how `E` extends to non-`f64` payloads (e.g. the expected
    /// latitude of an uncertain coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expect_by_in(&self, session: &mut Session, n: usize, score: impl Fn(&T) -> f64) -> f64 {
        session.expect_by(self, n, score)
    }

    /// Deprecated `Sampler` form of [`Uncertain::expect_by_in`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(since = "0.2.0", note = "use `expect_by_in(&mut Session, n, score)`")]
    pub fn expect_by(&self, sampler: &mut Sampler, n: usize, score: impl Fn(&T) -> f64) -> f64 {
        sampler.session_mut().expect_by(self, n, score)
    }
}

#[cfg(all(test, feature = "legacy-sampler"))]
mod tests {
    // The deprecated `*_with` shims are exercised on purpose: they are the
    // compatibility contract for seeded experiments.
    #![allow(deprecated)]

    use super::*;

    #[test]
    fn expected_value_of_point_mass_is_exact() {
        let x = Uncertain::point(4.25);
        let mut s = Sampler::seeded(0);
        assert_eq!(x.expected_value_with(&mut s, 10), 4.25);
    }

    #[test]
    fn expected_value_converges() {
        let x = Uncertain::normal(-3.0, 2.0).unwrap();
        let mut s = Sampler::seeded(1);
        let e = x.expected_value_with(&mut s, 20_000);
        assert!((e + 3.0).abs() < 0.05, "e={e}");
    }

    #[test]
    fn session_form_matches_sampler_shim() {
        let x = Uncertain::normal(1.0, 1.0).unwrap();
        let expr = &x * &x + 0.5;
        let mut session = Session::sequential(21);
        let mut sampler = Sampler::seeded(21);
        assert_eq!(
            expr.expected_value_in(&mut session, 1000),
            expr.expected_value_with(&mut sampler, 1000)
        );
        assert_eq!(
            expr.stats_in(&mut session, 1000).unwrap().mean(),
            expr.stats_with(&mut sampler, 1000).unwrap().mean()
        );
    }

    #[test]
    fn expectation_is_linear() {
        let a = Uncertain::normal(1.0, 1.0).unwrap();
        let b = Uncertain::normal(2.0, 1.0).unwrap();
        let sum = &a + &b;
        let mut s = Sampler::seeded(2);
        let e = sum.expected_value_with(&mut s, 20_000);
        assert!((e - 3.0).abs() < 0.05, "e={e}");
    }

    #[test]
    fn stats_capture_spread() {
        let x = Uncertain::uniform(0.0, 12.0).unwrap();
        let mut s = Sampler::seeded(3);
        let st = x.stats_with(&mut s, 20_000).unwrap();
        assert!((st.mean() - 6.0).abs() < 0.1);
        assert!((st.variance() - 12.0).abs() < 0.5);
        assert!(st.min() >= 0.0 && st.max() < 12.0);
    }

    #[test]
    fn expect_by_projects_components() {
        let pair = Uncertain::point((3.0_f64, 4.0_f64));
        let mut s = Sampler::seeded(4);
        let first = pair.expect_by(&mut s, 5, |(a, _)| *a);
        let second = pair.expect_by(&mut s, 5, |(_, b)| *b);
        assert_eq!(first, 3.0);
        assert_eq!(second, 4.0);
    }

    #[test]
    fn histogram_with_counts_everything() {
        let x = Uncertain::uniform(0.0, 1.0).unwrap();
        let mut s = Sampler::seeded(6);
        let h = x.histogram_with(&mut s, 500, 0.0, 1.0, 10).unwrap();
        assert_eq!(h.total(), 500);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn parallel_expectation_matches_serial() {
        let x = Uncertain::normal(4.0, 2.0).unwrap();
        let par = x.expected_value_parallel(9, 40_000, 4);
        assert!((par - 4.0).abs() < 0.05, "par={par}");
        // Deterministic for fixed (seed, n, threads).
        assert_eq!(par, x.expected_value_parallel(9, 40_000, 4));
        // Bitwise identical for any thread count.
        assert_eq!(par, x.expected_value_parallel(9, 40_000, 1));
        assert_eq!(par, x.expected_value_parallel(9, 40_000, 7));
        // Different seeds differ.
        assert_ne!(par, x.expected_value_parallel(10, 40_000, 4));
    }

    #[test]
    fn parallel_expectation_shares_the_network() {
        // A shared-dependence expression evaluated across threads keeps
        // its semantics (x − x ≡ 0).
        let x = Uncertain::normal(0.0, 5.0).unwrap();
        let zero = &x - &x;
        assert_eq!(zero.expected_value_parallel(3, 1000, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let x = Uncertain::point(1.0);
        let mut s = Sampler::seeded(5);
        let _ = x.expected_value_with(&mut s, 0);
    }
}
