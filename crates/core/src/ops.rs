//! Lifted arithmetic operators (paper Table 1: `+ − × ÷` over `U<T>`).
//!
//! Each operator allocates one inner node in the Bayesian network; no
//! sampling happens here. All four ownership combinations are provided
//! (`a + b`, `&a + b`, `a + &b`, `&a + &b`) because `Uncertain` values are
//! routinely reused, plus mixed scalar forms (`speed / dt`, `2.0 * x`) for
//! the primitive numeric types — the paper's implicit point-mass coercion.

use crate::kernel::{bin_tag_for, un_tag_for, BinOp, UnOp};
use crate::uncertain::{Uncertain, Value};
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

macro_rules! lift_binary_op {
    ($op_trait:ident, $method:ident, $label:expr, $kernel_op:ident) => {
        impl<T> $op_trait<Uncertain<T>> for Uncertain<T>
        where
            T: $op_trait<Output = T> + Value,
        {
            type Output = Uncertain<T>;
            fn $method(self, rhs: Uncertain<T>) -> Uncertain<T> {
                self.map2_tagged($label, &rhs, bin_tag_for::<T>(BinOp::$kernel_op), |a, b| {
                    a.$method(b)
                })
            }
        }

        impl<T> $op_trait<&Uncertain<T>> for Uncertain<T>
        where
            T: $op_trait<Output = T> + Value,
        {
            type Output = Uncertain<T>;
            fn $method(self, rhs: &Uncertain<T>) -> Uncertain<T> {
                self.map2_tagged($label, rhs, bin_tag_for::<T>(BinOp::$kernel_op), |a, b| {
                    a.$method(b)
                })
            }
        }

        impl<T> $op_trait<Uncertain<T>> for &Uncertain<T>
        where
            T: $op_trait<Output = T> + Value,
        {
            type Output = Uncertain<T>;
            fn $method(self, rhs: Uncertain<T>) -> Uncertain<T> {
                self.map2_tagged($label, &rhs, bin_tag_for::<T>(BinOp::$kernel_op), |a, b| {
                    a.$method(b)
                })
            }
        }

        impl<T> $op_trait<&Uncertain<T>> for &Uncertain<T>
        where
            T: $op_trait<Output = T> + Value,
        {
            type Output = Uncertain<T>;
            fn $method(self, rhs: &Uncertain<T>) -> Uncertain<T> {
                self.map2_tagged($label, rhs, bin_tag_for::<T>(BinOp::$kernel_op), |a, b| {
                    a.$method(b)
                })
            }
        }
    };
}

lift_binary_op!(Add, add, "+", Add);
lift_binary_op!(Sub, sub, "-", Sub);
lift_binary_op!(Mul, mul, "*", Mul);
lift_binary_op!(Div, div, "/", Div);
lift_binary_op!(Rem, rem, "%", Rem);

impl<T> Neg for Uncertain<T>
where
    T: Neg<Output = T> + Value,
{
    type Output = Uncertain<T>;
    fn neg(self) -> Uncertain<T> {
        self.map_tagged("neg", un_tag_for::<T>(|| UnOp::Neg), |v| -v)
    }
}

impl<T> Neg for &Uncertain<T>
where
    T: Neg<Output = T> + Value,
{
    type Output = Uncertain<T>;
    fn neg(self) -> Uncertain<T> {
        self.map_tagged("neg", un_tag_for::<T>(|| UnOp::Neg), |v| -v)
    }
}

/// Scalar mixing: `Uncertain<$t> ⊕ $t` and `$t ⊕ Uncertain<$t>` for the
/// primitive numeric types, implementing the paper's coercion of concrete
/// operands to point masses.
macro_rules! lift_scalar_ops {
    ($($t:ty),*) => {$(
        lift_scalar_ops!(@one $t, Add, add, "+", AddK, AddK);
        lift_scalar_ops!(@one $t, Sub, sub, "-", SubK, RsubK);
        lift_scalar_ops!(@one $t, Mul, mul, "*", MulK, MulK);
        lift_scalar_ops!(@one $t, Div, div, "/", DivK, RdivK);
        lift_scalar_ops!(@one $t, Rem, rem, "%", RemK, RremK);
    )*};
    (@one $t:ty, $op_trait:ident, $method:ident, $label:expr, $fwd:ident, $rev:ident) => {
        impl $op_trait<$t> for Uncertain<$t> {
            type Output = Uncertain<$t>;
            fn $method(self, rhs: $t) -> Uncertain<$t> {
                let tag = un_tag_for::<$t>(|| UnOp::$fwd(rhs as f64));
                self.map_tagged(concat!($label, " scalar"), tag, move |a: $t| a.$method(rhs))
            }
        }

        impl $op_trait<$t> for &Uncertain<$t> {
            type Output = Uncertain<$t>;
            fn $method(self, rhs: $t) -> Uncertain<$t> {
                let tag = un_tag_for::<$t>(|| UnOp::$fwd(rhs as f64));
                self.map_tagged(concat!($label, " scalar"), tag, move |a: $t| a.$method(rhs))
            }
        }

        impl $op_trait<Uncertain<$t>> for $t {
            type Output = Uncertain<$t>;
            fn $method(self, rhs: Uncertain<$t>) -> Uncertain<$t> {
                let tag = un_tag_for::<$t>(|| UnOp::$rev(self as f64));
                rhs.map_tagged(concat!("scalar ", $label), tag, move |b: $t| self.$method(b))
            }
        }

        impl $op_trait<&Uncertain<$t>> for $t {
            type Output = Uncertain<$t>;
            fn $method(self, rhs: &Uncertain<$t>) -> Uncertain<$t> {
                let tag = un_tag_for::<$t>(|| UnOp::$rev(self as f64));
                rhs.map_tagged(concat!("scalar ", $label), tag, move |b: $t| self.$method(b))
            }
        }
    };
}

lift_scalar_ops!(f32, f64, i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, isize, usize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    #[test]
    fn point_arithmetic_matches_scalar_arithmetic() {
        let a = Uncertain::point(6.0);
        let b = Uncertain::point(3.0);
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&(&a + &b)), 9.0);
        assert_eq!(s.sample(&(&a - &b)), 3.0);
        assert_eq!(s.sample(&(&a * &b)), 18.0);
        assert_eq!(s.sample(&(&a / &b)), 2.0);
        assert_eq!(s.sample(&(&a % &b)), 0.0);
        assert_eq!(s.sample(&(-&a)), -6.0);
    }

    #[test]
    fn all_ownership_combinations_compile_and_agree() {
        let a = Uncertain::point(10_i64);
        let b = Uncertain::point(4_i64);
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&(a.clone() + b.clone())), 14);
        assert_eq!(s.sample(&(&a + b.clone())), 14);
        assert_eq!(s.sample(&(a.clone() + &b)), 14);
        assert_eq!(s.sample(&(&a + &b)), 14);
    }

    #[test]
    fn scalar_mixing_both_sides() {
        let x = Uncertain::point(8.0);
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&(&x + 2.0)), 10.0);
        assert_eq!(s.sample(&(2.0 + &x)), 10.0);
        assert_eq!(s.sample(&(x.clone() - 3.0)), 5.0);
        assert_eq!(s.sample(&(20.0 / x.clone())), 2.5);
        assert_eq!(s.sample(&(3.0 * x.clone())), 24.0);
        let n = Uncertain::point(17_u32);
        assert_eq!(s.sample(&(&n % 5)), 2);
    }

    #[test]
    fn sum_variance_compounds() {
        // Var[a + b] = 2 for two independent N(0,1) (paper Fig. 6).
        let a = Uncertain::normal(0.0, 1.0).unwrap();
        let b = Uncertain::normal(0.0, 1.0).unwrap();
        let c = &a + &b;
        let mut s = Session::sequential(42);
        let stats = c.stats_in(&mut s, 20_000).unwrap();
        assert!(
            (stats.variance() - 2.0).abs() < 0.15,
            "{}",
            stats.variance()
        );
    }

    #[test]
    fn shared_dependence_halves_nothing() {
        // x + x ~ 2x, so Var[x + x] = 4·Var[x], NOT 2·Var[x] (Fig. 8).
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let doubled = &x + &x;
        let mut s = Session::sequential(43);
        let stats = doubled.stats_in(&mut s, 20_000).unwrap();
        assert!((stats.variance() - 4.0).abs() < 0.3, "{}", stats.variance());
    }

    #[test]
    fn subtraction_of_self_is_exactly_zero() {
        let x = Uncertain::uniform(0.0, 100.0).unwrap();
        let zero = &x - &x;
        let mut s = Session::sequential(44);
        for _ in 0..200 {
            assert_eq!(s.sample(&zero), 0.0);
        }
    }

    #[test]
    fn division_by_point_mass_scales() {
        // The GPS-Walking pattern: Distance / dt.
        let distance = Uncertain::normal(30.0, 1.0).unwrap();
        let dt = 10.0;
        let speed = &distance / dt;
        let mut s = Session::sequential(45);
        let mean = speed.expected_value_in(&mut s, 5000);
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn deep_expression_chains_work() {
        let x = Uncertain::point(1.0);
        let mut expr = x.clone();
        for _ in 0..100 {
            expr = expr + &x;
        }
        let mut s = Session::sequential(46);
        assert_eq!(s.sample(&expr), 101.0);
    }

    #[test]
    fn very_deep_chains_stay_within_stack() {
        // Ancestral sampling recurses to the network depth; this pins the
        // supported depth well beyond anything a hand-written program
        // produces (the graph walk itself is iterative).
        let x = Uncertain::point(1.0);
        let mut expr = x.clone();
        for _ in 0..4000 {
            expr = expr + &x;
        }
        let mut s = Session::sequential(47);
        assert_eq!(s.sample(&expr), 4001.0);
        assert_eq!(expr.network().depth(), 4001);
    }
}
