//! The session evaluation runtime: cross-call plan caching, seeding
//! policy, and batched-sampling workers behind one handle.
//!
//! A [`Plan`](crate::Plan) makes *one* query on *one* pinned network fast,
//! but the paper's programs ask the **same structural question thousands of
//! times**: GPS-Walking re-decides its speed conditional on every fix,
//! SensorLife re-tests liveness for every cell of every generation. Before
//! this module, every `pr`/`expected_value`/`histogram` call site recompiled
//! its plan from scratch. A [`Session`] owns everything those call sites
//! were rebuilding per call:
//!
//! * a **plan cache** keyed by root [`NodeId`] — LRU with configurable
//!   capacity, hit/miss/eviction counters ([`Session::cache_stats`]), and
//!   explicit [`invalidate`](Session::invalidate)/[`clear_cache`](Session::clear_cache);
//! * the **RNG seeding policy** — seeded or entropy roots, with per-query
//!   SplitMix64 substreams so every result is bitwise-reproducible *and*
//!   thread-count-invariant;
//! * the **worker pool** used by batched sampling — a configured worker
//!   count whose scoped threads shard large batches without changing a
//!   single sampled value.
//!
//! Root `NodeId` is a sound cache key because node ids are process-wide
//! unique (never reused) and networks are immutable once built: a root id
//! names exactly one DAG, shared sub-expressions included, forever. A
//! cached plan can therefore never be stale — eviction exists purely to
//! bound memory.
//!
//! The legacy [`Sampler`](crate::Sampler) is now a thin wrapper over a
//! single-threaded `Session` in *sequential* seeding mode
//! ([`Session::sequential`]), which reproduces the historical per-sample
//! seed stream bit for bit — every seeded experiment in this repository
//! produces the same numbers it always did, while transparently gaining the
//! plan cache.

use crate::condition::{EvalConfig, EvalStrategy, HypothesisOutcome, Provenance, StatsOutcome};
use crate::context::SampleContext;
use crate::error::{Error, NotAnalyticError};
use crate::exact::{self, BoolLaw, ScalarLaw};
use crate::kernel::{self, Kernel, KERNEL_CHUNK};
use crate::node::{NodeId, NodeInfo};
#[cfg(feature = "obs")]
use crate::obs::{DecisionTrace, Dispatch, Recorder, StoppingReason, TracePoint};
use crate::plan::{sample_batch_sharded, sample_seed, Plan};
use crate::uncertain::{Uncertain, Value};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use uncertain_stats::{Histogram, SequentialTest, StatsError, Summary, TestDecision};

/// Default number of plans the cache retains before evicting.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Below this many samples a query stays on the calling thread even when
/// the session has workers configured: spawn overhead would dominate.
const PAR_MIN_BATCH: usize = 1024;

/// Index used to derive the auxiliary raw-RNG stream of a substream
/// session ([`Session::rng`]) so it never collides with query substreams.
const AUX_STREAM_INDEX: u64 = 0xA0A0_A0A0_A0A0_A0A0;

/// Networks deeper than this are evaluated by the (bitwise-equivalent)
/// tree-walk interpreter instead of a compiled plan. Compilation itself is
/// work-stack driven and handles any depth, but *evaluating* a plan still
/// nests one closure call per level, so a pathological chain tens of
/// thousands of nodes deep would exhaust the stack at sample time. Only
/// throughput differs on the fallback path, never values.
const MAX_PLAN_DEPTH: usize = 2500;

/// Longest root-to-leaf path of the *static* network (the part a plan
/// would compile), computed iteratively so the probe itself never
/// recurses.
fn network_depth<T: Value>(u: &Uncertain<T>) -> usize {
    let root: Arc<dyn NodeInfo> = u.node().clone();
    let mut depth: HashMap<NodeId, usize> = HashMap::new();
    let mut stack: Vec<(Arc<dyn NodeInfo>, bool)> = vec![(root.clone(), false)];
    while let Some((node, expanded)) = stack.pop() {
        let id = node.id();
        if depth.contains_key(&id) {
            continue;
        }
        if expanded {
            let d = 1 + node
                .children()
                .iter()
                .filter_map(|c| depth.get(&c.id()))
                .copied()
                .max()
                .unwrap_or(0);
            depth.insert(id, d);
        } else {
            stack.push((node.clone(), true));
            for child in node.children() {
                if !depth.contains_key(&child.id()) {
                    stack.push((child, false));
                }
            }
        }
    }
    depth.get(&root.id()).copied().unwrap_or(0)
}

/// Synthesizes an exact [`Summary`] from a Gaussian scalar law: `n`
/// observations placed at the law's mid-quantiles `(i + ½)/n` (a monotone
/// grid, so order statistics read off the closed-form CDF), with the
/// exact mean and variance attached via [`Summary::from_parts`].
fn exact_summary(law: &ScalarLaw, n: usize) -> Result<Summary, StatsError> {
    if n == 0 {
        return Err(StatsError::new("cannot summarize an empty sample"));
    }
    let grid: Vec<f64> = (0..n)
        .map(|i| law.quantile((i as f64 + 0.5) / n as f64))
        .collect();
    Summary::from_parts(grid, law.mean, law.variance)
}

/// How a session evaluates one network's joint samples: the compiled plan
/// in the common case, the equivalent tree-walk for networks too deep to
/// compile safely.
enum Exec<T> {
    Plan {
        plan: Arc<Plan<T>>,
        /// The columnar twin of the plan, when every node lowers to the
        /// instruction tape; batch queries prefer it.
        kernel: Option<Arc<Kernel<T>>>,
    },
    Tree(Uncertain<T>),
}

impl<T: Value> Exec<T> {
    fn install(&self, ctx: &mut SampleContext) {
        if let Exec::Plan { plan, .. } = self {
            plan.install(ctx);
        }
    }

    /// One joint sample; the caller reseeds the context first.
    fn evaluate(&self, ctx: &mut SampleContext) -> T {
        match self {
            Exec::Plan { plan, .. } => plan.evaluate(ctx),
            Exec::Tree(u) => {
                ctx.begin_joint_sample();
                u.node().sample_value(ctx)
            }
        }
    }

    /// The plan, if this executor can shard batches across workers.
    fn plan(&self) -> Option<&Plan<T>> {
        match self {
            Exec::Plan { plan, .. } => Some(plan),
            Exec::Tree(_) => None,
        }
    }

    /// The columnar kernel, if the network lowered to one.
    fn kernel(&self) -> Option<&Arc<Kernel<T>>> {
        match self {
            Exec::Plan { kernel, .. } => kernel.as_ref(),
            Exec::Tree(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Seeding policy
// ---------------------------------------------------------------------------

/// How a session turns "the next joint sample" into an RNG seed.
enum SeedPolicy {
    /// One shared `StdRng` stream; each joint sample consumes the next
    /// `u64`. This is the historical [`Sampler`](crate::Sampler) behavior —
    /// bitwise-compatible with every seeded experiment in the repository —
    /// but it is order-dependent, so sequential sessions never shard
    /// batches across workers.
    Sequential { rng: StdRng },
    /// Pure counter-mode seeding: query `q` gets the SplitMix64 substream
    /// `sample_seed(root, q)`, and sample `i` of that query is seeded by
    /// `sample_seed(substream, i)`. Results depend only on
    /// `(root, query index, sample index)` — bitwise identical for any
    /// worker count.
    Substream {
        root: u64,
        queries: u64,
        aux: StdRng,
    },
}

impl SeedPolicy {
    /// Starts the per-sample seed stream of the next query.
    fn begin_query(&mut self) -> QuerySeeds<'_> {
        match self {
            SeedPolicy::Sequential { rng } => QuerySeeds::Sequential(rng),
            SeedPolicy::Substream { root, queries, .. } => {
                let q = *queries;
                *queries += 1;
                QuerySeeds::Indexed {
                    substream: sample_seed(*root, q),
                    cursor: 0,
                }
            }
        }
    }

    /// One seed drawn as its own single-sample query.
    fn derive_seed(&mut self) -> u64 {
        self.begin_query().next()
    }

    /// The raw auxiliary RNG (workload generators, simulated sensors).
    fn raw_rng(&mut self) -> &mut dyn RngCore {
        match self {
            SeedPolicy::Sequential { rng } => rng,
            SeedPolicy::Substream { aux, .. } => aux,
        }
    }
}

/// The per-sample seed stream of one query.
enum QuerySeeds<'a> {
    Sequential(&'a mut StdRng),
    Indexed { substream: u64, cursor: u64 },
}

impl QuerySeeds<'_> {
    /// The seed for the next joint sample of this query.
    fn next(&mut self) -> u64 {
        match self {
            QuerySeeds::Sequential(rng) => rng.gen(),
            QuerySeeds::Indexed { substream, cursor } => {
                let seed = sample_seed(*substream, *cursor);
                *cursor += 1;
                seed
            }
        }
    }

    /// The substream root, if this query is index-seeded (and therefore
    /// shardable across workers).
    fn shardable(&self) -> Option<u64> {
        match self {
            QuerySeeds::Sequential(_) => None,
            QuerySeeds::Indexed { substream, .. } => Some(*substream),
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Counters and occupancy of a session's plan cache.
///
/// Returned by [`Session::cache_stats`]; the hit/miss split is the direct
/// observable for "is this workload reusing structure?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from a cached plan.
    pub hits: u64,
    /// Queries that had to compile (including when caching is disabled).
    pub misses: u64,
    /// Plans evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Maximum plans retained (`0` disables caching).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (`0.0` when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counter-wise sum, for aggregating the caches of many sessions (an
/// evaluation service metering a whole shard's tenant pool). `entries`
/// and `capacity` add too: the sum describes the aggregate cache.
impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            entries: self.entries + rhs.entries,
            capacity: self.capacity + rhs.capacity,
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), |a, b| a + b)
    }
}

/// One cached compiled plan (plus its columnar kernel, when the network
/// lowered to one), type-erased so networks of any payload type share the
/// cache.
struct CacheEntry {
    plan: Arc<dyn Any + Send + Sync>,
    kernel: Option<Arc<dyn Any + Send + Sync>>,
    last_used: u64,
}

/// Upper bound on the no-tape memo ([`PlanCache::no_tape`]). Far above any
/// realistic number of distinct non-lowerable roots a session sees; if it
/// is ever hit the memo resets, which only re-pays one lowering attempt
/// per root.
const NO_TAPE_MEMO_CAP: usize = 4096;

/// Upper bound on each analytic-verdict memo ([`PlanCache::exact_bool`],
/// [`PlanCache::exact_f64`]). Same clear-on-overflow policy as the
/// no-tape memo: hitting the cap only re-pays one graph analysis per root.
const EXACT_MEMO_CAP: usize = 4096;

/// LRU plan cache keyed by root [`NodeId`].
struct PlanCache {
    entries: HashMap<NodeId, CacheEntry>,
    /// Roots known **not** to lower to a kernel tape. Node ids name
    /// immutable DAGs, so this verdict can never go stale — and unlike
    /// `entries` it is *not* evicted with the LRU: a closure-path tenant
    /// whose plan churns in and out of the cache pays the (futile)
    /// lowering walk once, not once per eviction.
    no_tape: HashSet<NodeId>,
    /// Analytic verdicts for boolean roots: `Some(law)` when the graph
    /// reduced to a closed form, `None` when the analyzer declined. Like
    /// `no_tape`, immune to LRU eviction — node ids name immutable DAGs,
    /// so a verdict can never go stale, and a root whose *plan* churns
    /// out of the cache keeps its (possibly negative) analysis verdict.
    exact_bool: HashMap<NodeId, Option<BoolLaw>>,
    /// Analytic verdicts for scalar roots, same lifecycle as `exact_bool`.
    exact_f64: HashMap<NodeId, Option<ScalarLaw>>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            no_tape: HashSet::new(),
            exact_bool: HashMap::new(),
            exact_f64: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Whether `id` is memoized as "does not lower to a tape".
    fn known_no_tape(&self, id: NodeId) -> bool {
        self.no_tape.contains(&id)
    }

    /// Memoizes the non-lowerable verdict for `id`.
    fn note_no_tape(&mut self, id: NodeId) {
        if self.no_tape.len() >= NO_TAPE_MEMO_CAP {
            self.no_tape.clear();
        }
        self.no_tape.insert(id);
    }

    /// The memoized analytic verdict for boolean root `id`, if recorded.
    /// Outer `None` = never analyzed; inner `None` = analyzed, declined.
    fn known_exact_bool(&self, id: NodeId) -> Option<Option<BoolLaw>> {
        self.exact_bool.get(&id).copied()
    }

    /// Memoizes the analytic verdict (positive or negative) for `id`.
    fn note_exact_bool(&mut self, id: NodeId, verdict: Option<BoolLaw>) {
        if self.exact_bool.len() >= EXACT_MEMO_CAP {
            self.exact_bool.clear();
        }
        self.exact_bool.insert(id, verdict);
    }

    /// The memoized analytic verdict for scalar root `id`, if recorded.
    fn known_exact_f64(&self, id: NodeId) -> Option<Option<ScalarLaw>> {
        self.exact_f64.get(&id).copied()
    }

    /// Memoizes the analytic verdict (positive or negative) for `id`.
    fn note_exact_f64(&mut self, id: NodeId, verdict: Option<ScalarLaw>) {
        if self.exact_f64.len() >= EXACT_MEMO_CAP {
            self.exact_f64.clear();
        }
        self.exact_f64.insert(id, verdict);
    }

    /// The cached plan (and kernel, if any) for `id`, bumping the hit
    /// counter and LRU stamp.
    #[allow(clippy::type_complexity)]
    fn lookup<T: Value>(&mut self, id: NodeId) -> Option<(Arc<Plan<T>>, Option<Arc<Kernel<T>>>)> {
        self.tick += 1;
        let entry = self.entries.get_mut(&id)?;
        // Node ids are globally unique and typed, so the downcast can only
        // fail if identity were violated; recompile defensively then.
        let plan = entry.plan.clone().downcast::<Plan<T>>().ok()?;
        let kernel = entry
            .kernel
            .clone()
            .and_then(|k| k.downcast::<Kernel<T>>().ok());
        entry.last_used = self.tick;
        self.hits += 1;
        Some((plan, kernel))
    }

    /// Caches `plan` (and its kernel) under `id`, evicting the
    /// least-recently-used entry at capacity. No-op when caching is
    /// disabled.
    fn store<T: Value>(&mut self, id: NodeId, plan: Arc<Plan<T>>, kernel: Option<Arc<Kernel<T>>>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&id) {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            if let Some(victim) = lru {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            id,
            CacheEntry {
                plan: plan as Arc<dyn Any + Send + Sync>,
                kernel: kernel.map(|k| k as Arc<dyn Any + Send + Sync>),
                last_used: self.tick,
            },
        );
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: RefCell<Session> = RefCell::new(Session::new());
}

/// The evaluation runtime for `Uncertain<T>` queries: plan cache + seeding
/// policy + batching workers, in one reusable handle.
///
/// Every query (`pr`, `e`, `stats`, `histogram`, …) routes through the
/// session's plan cache: asking the same structural question twice compiles
/// once. A session is also the unit of reproducibility — a seeded session
/// answers an identical call sequence with identical bits, regardless of
/// its worker count — and the unit you shard in a multi-tenant evaluation
/// service (one session per shard, no shared mutable state).
///
/// # Examples
///
/// ```
/// use uncertain_core::{Session, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Uncertain::normal(4.0, 1.0)?;
/// let b = Uncertain::normal(5.0, 1.0)?;
/// let c = &a + &b;
///
/// let mut session = Session::seeded(42);
/// assert!(session.is_probable(&c.gt(5.0)));  // Pr[c > 5] > 0.5
/// assert!(!session.pr(&c.gt(12.0), 0.9));    // not 90% sure c > 12
/// let e = session.e(&c, 1000);
/// assert!((e - 9.0).abs() < 0.2);
///
/// // Re-deciding the same conditional hits the plan cache.
/// let fast = c.gt(5.0);
/// session.pr(&fast, 0.5);
/// session.pr(&fast, 0.5);
/// assert!(session.cache_stats().hits >= 1);
/// # Ok(())
/// # }
/// ```
pub struct Session {
    cache: PlanCache,
    seeds: SeedPolicy,
    threads: usize,
    config: EvalConfig,
    ctx: SampleContext,
    joint_samples: u64,
    /// Queries answered by the analytic backend with zero samples
    /// ([`Session::exact_hits`]).
    exact_hits: u64,
    /// The last sequential test built, keyed by the config/threshold that
    /// produced it (the common case: one conditional site re-decided).
    cached_test: Option<(EvalConfig, f64, SequentialTest)>,
    /// Decision-trace sink. `None` (the default) keeps the SPRT loop on
    /// its unrecorded fast path — the only residual cost is checking this
    /// option once per decision and once per batch.
    #[cfg(feature = "obs")]
    recorder: Option<Box<dyn Recorder>>,
    /// Cumulative nanoseconds spent compiling plans on cache misses —
    /// the "plan-compile" phase of a request, separable from sampling
    /// time by diffing this counter around a query.
    #[cfg(feature = "obs")]
    plan_build_ns: u64,
    /// Which backend answered the most recent decision-family query
    /// ([`Session::last_dispatch`]). One enum store per decision — cheap
    /// enough to track unconditionally under `obs`, so request tracing
    /// can attribute kernel-vs-closure-vs-exact dispatch without
    /// installing a recorder.
    #[cfg(feature = "obs")]
    last_dispatch: Option<Dispatch>,
    /// Whether kernels lower in reduced-precision column mode
    /// ([`Session::with_f32_columns`]). Construction-time only, so a
    /// cached kernel's precision always matches the session flag.
    #[cfg(feature = "f32-columns")]
    f32_columns: bool,
    /// Kernel-lowering attempts (cheap observability for the no-tape memo
    /// tests; a memo hit must not re-attempt lowering).
    #[cfg(test)]
    lower_attempts: u64,
    /// Analytic-recognition walks (observability for the exact-memo
    /// tests; a memo hit must not re-walk the graph).
    #[cfg(test)]
    exact_analyses: u64,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field(
                "seeding",
                &match self.seeds {
                    SeedPolicy::Sequential { .. } => "sequential",
                    SeedPolicy::Substream { .. } => "substream",
                },
            )
            .field("threads", &self.threads)
            .field("cache", &self.cache.stats())
            .field("joint_samples", &self.joint_samples)
            .finish_non_exhaustive()
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    fn with_policy(seeds: SeedPolicy) -> Self {
        Self {
            cache: PlanCache::new(DEFAULT_CACHE_CAPACITY),
            seeds,
            threads: 1,
            config: EvalConfig::default(),
            ctx: SampleContext::from_seed(0),
            joint_samples: 0,
            exact_hits: 0,
            cached_test: None,
            #[cfg(feature = "obs")]
            recorder: None,
            #[cfg(feature = "obs")]
            plan_build_ns: 0,
            #[cfg(feature = "obs")]
            last_dispatch: None,
            #[cfg(feature = "f32-columns")]
            f32_columns: false,
            #[cfg(test)]
            lower_attempts: 0,
            #[cfg(test)]
            exact_analyses: 0,
        }
    }

    /// Creates a session seeded from OS entropy (per-query substreams).
    pub fn new() -> Self {
        Self::seeded(StdRng::from_entropy().gen())
    }

    /// Creates a deterministic session: query `q`, sample `i` is seeded
    /// purely by `(seed, q, i)`, so an identical call sequence reproduces
    /// identical bits — on any number of worker threads.
    pub fn seeded(seed: u64) -> Self {
        Self::with_policy(SeedPolicy::Substream {
            root: seed,
            queries: 0,
            aux: StdRng::seed_from_u64(sample_seed(seed, AUX_STREAM_INDEX)),
        })
    }

    /// Creates a session that reproduces the legacy
    /// [`Sampler`](crate::Sampler) seed stream bit for bit: one shared
    /// `StdRng`, one `u64` per joint sample, in call order. Sequential
    /// sessions are inherently single-threaded (the stream is
    /// order-dependent), so they never shard batches.
    ///
    /// Use this when migrating a seeded experiment whose recorded numbers
    /// must not move; new code should prefer [`Session::seeded`].
    pub fn sequential(seed: u64) -> Self {
        Self::with_policy(SeedPolicy::Sequential {
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Sequential-mode session seeded from OS entropy (the legacy
    /// `Sampler::new()` behavior).
    #[cfg(feature = "legacy-sampler")]
    pub(crate) fn sequential_from_entropy() -> Self {
        Self::with_policy(SeedPolicy::Sequential {
            rng: StdRng::from_entropy(),
        })
    }

    /// Returns the session with the given conditional-evaluation
    /// configuration — the single home for the SPRT knobs (α/β error
    /// bounds, indifference δ, batch size, sample cap).
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns the session with the given evaluation strategy — shorthand
    /// for rewriting [`EvalConfig::strategy`] on the session's config.
    ///
    /// [`EvalStrategy::Auto`] lets recognized analytic subgraphs
    /// (Bernoulli evidence chains, linear-Gaussian comparisons) answer
    /// `pr`/`evaluate`/`e`/`stats` in closed form with **zero samples**,
    /// falling back bitwise-identically to sampling for everything else;
    /// [`EvalStrategy::ExactOnly`] turns that fallback into
    /// [`Error::NotAnalytic`].
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{EvalStrategy, Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(0.0, 1.0)?;
    /// let mut session = Session::seeded(0).with_strategy(EvalStrategy::Auto);
    /// let config = *session.config();
    /// let outcome = session.try_evaluate(&x.lt(1.0), 0.5, &config)?;
    /// assert_eq!(outcome.samples, 0); // decided analytically
    /// assert!(outcome.provenance.is_exact());
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Returns the session with the given worker count for batched
    /// sampling. Workers change wall-clock time only, never sampled values
    /// (sequential-mode sessions ignore this and stay on one thread).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Returns the session with the given plan-cache capacity. `0`
    /// disables caching (every query compiles — the baseline the
    /// `bench_session` binary compares against).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = PlanCache::new(capacity);
        self
    }

    /// Returns the session with reduced-precision kernel columns enabled:
    /// networks lower with their tagged `f64` arithmetic interior demoted
    /// to `f32` register columns (half the column memory traffic, twice
    /// the SIMD lanes). This **trades the bitwise closure↔kernel equality
    /// contract for speed** — values can differ from the `f64` path by
    /// f32 rounding — so it is per-session opt-in, construction-time
    /// only, and intended for throughput-bound workloads that tolerate
    /// single precision. Leaf sampling, comparisons, and the root column
    /// stay `f64`.
    #[cfg(feature = "f32-columns")]
    pub fn with_f32_columns(mut self, enabled: bool) -> Self {
        self.f32_columns = enabled;
        self
    }

    /// The session's conditional-evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Replaces the conditional-evaluation configuration in place.
    pub fn set_config(&mut self, config: EvalConfig) {
        self.config = config;
    }

    /// The configured worker count for batched sampling.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of queries this session answered analytically with zero
    /// samples (the exact-backend hit counter; observability twin of
    /// [`Session::cache_stats`]).
    pub fn exact_hits(&self) -> u64 {
        self.exact_hits
    }

    /// Hit/miss/eviction counters and occupancy of the plan cache.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let coin = Uncertain::bernoulli(0.9)?;
    /// let mut session = Session::seeded(7);
    /// session.pr(&coin, 0.5); // first decision compiles: one miss
    /// session.pr(&coin, 0.5); // re-decision reuses it:   one hit
    /// let stats = session.cache_stats();
    /// assert_eq!((stats.misses, stats.hits), (1, 1));
    /// assert_eq!(stats.hit_rate(), 0.5);
    /// assert_eq!(stats.entries, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Installs a [`Recorder`] that receives one [`DecisionTrace`] per
    /// SPRT decision ([`Session::pr`], [`Session::evaluate`], …),
    /// returning the previously installed recorder, if any.
    ///
    /// Recording changes wall time only — the sample stream, verdicts,
    /// and every counter are bitwise identical with or without a
    /// recorder installed.
    #[cfg(feature = "obs")]
    pub fn install_recorder(&mut self, recorder: Box<dyn Recorder>) -> Option<Box<dyn Recorder>> {
        self.recorder.replace(recorder)
    }

    /// Removes and returns the installed [`Recorder`], restoring the
    /// unrecorded fast path.
    #[cfg(feature = "obs")]
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// Builder form of [`Session::install_recorder`].
    #[cfg(feature = "obs")]
    pub fn with_recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Cumulative nanoseconds this session has spent compiling evaluation
    /// plans (cache misses only; hits never touch this). Diff the counter
    /// around a query to attribute its plan-compile phase separately from
    /// sampling — how the serving stack splits request spans.
    #[cfg(feature = "obs")]
    pub fn plan_build_ns(&self) -> u64 {
        self.plan_build_ns
    }

    /// Which backend answered the session's most recent decision-family
    /// query ([`Session::evaluate`], [`Session::pr`], …): the analytic
    /// backend, the columnar kernel, or the closure plan. `None` until
    /// the first decision.
    ///
    /// Purely observational — reading it never perturbs the sample
    /// stream; the serve layer attaches it to request spans.
    #[cfg(feature = "obs")]
    pub fn last_dispatch(&self) -> Option<Dispatch> {
        self.last_dispatch
    }

    /// Drops the cached plan for the network rooted at `root`, if present.
    /// Returns whether a plan was evicted. (Cached plans are never *stale*
    /// — networks are immutable — so this is purely a memory-management
    /// hook.)
    pub fn invalidate(&mut self, root: NodeId) -> bool {
        self.cache.entries.remove(&root).is_some()
    }

    /// Drops every cached plan, keeping the counters.
    pub fn clear_cache(&mut self) {
        self.cache.entries.clear();
    }

    /// The session's stream position: how many queries it has answered.
    ///
    /// For a substream session ([`Session::seeded`]) this counter *is* the
    /// whole seeding state — query `q` is seeded purely by `(seed, q)` —
    /// so a session is cheaply evictable tenancy: drop it (plan cache and
    /// all) and later rebuild it with [`Session::resume_at`], and every
    /// future sample is bitwise what the original session would have
    /// drawn. Sharded evaluation services rely on this to bound their
    /// per-shard session pools without losing per-tenant determinism.
    ///
    /// Returns `None` for sequential-mode sessions, whose stream position
    /// is the full RNG state rather than a resumable counter.
    pub fn query_index(&self) -> Option<u64> {
        match &self.seeds {
            SeedPolicy::Sequential { .. } => None,
            SeedPolicy::Substream { queries, .. } => Some(*queries),
        }
    }

    /// Fast-forwards (or rewinds) a substream session to the given query
    /// index — the counterpart of [`Session::query_index`] for rebuilding
    /// an evicted session: `Session::seeded(s)` followed by
    /// `resume_at(q)` answers query `q` exactly as the original
    /// `Session::seeded(s)` would have after `q` queries.
    ///
    /// Only the seeding stream is positioned; the plan cache starts cold
    /// (plans are recompiled on demand, which changes throughput, never
    /// values).
    ///
    /// # Panics
    ///
    /// Panics on a sequential-mode session: its stream is
    /// order-dependent, so there is no counter to resume from.
    pub fn resume_at(&mut self, query_index: u64) {
        match &mut self.seeds {
            SeedPolicy::Sequential { .. } => {
                panic!("sequential sessions have an order-dependent stream and cannot resume")
            }
            SeedPolicy::Substream { queries, .. } => *queries = query_index,
        }
    }

    /// Total joint samples drawn through this session.
    pub fn joint_samples(&self) -> u64 {
        self.joint_samples
    }

    /// Resets the joint-sample counter (seeding state is unaffected).
    pub fn reset_joint_samples(&mut self) {
        self.joint_samples = 0;
    }

    /// An auxiliary raw RNG for code that mixes plain random draws with
    /// network queries (workload generators, simulated sensors). In a
    /// sequential session this is the legacy shared stream; in a substream
    /// session it is a dedicated stream derived from the root seed.
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.seeds.raw_rng()
    }

    /// The cached compiled plan for `u`'s network, compiling on first use.
    ///
    /// This is the hook [`Evaluator::from_session`](crate::Evaluator::from_session)
    /// uses to borrow a plan instead of recompiling; it is public so callers
    /// can pre-warm or inspect plans explicitly.
    pub fn cached_plan<T: Value>(&mut self, u: &Uncertain<T>) -> Arc<Plan<T>> {
        self.cached_compiled(u).0
    }

    /// [`Session::cached_plan`] plus the plan's columnar kernel (when the
    /// network lowers to one) — the full compiled artifact an
    /// [`Evaluator`](crate::Evaluator) borrows.
    #[allow(clippy::type_complexity)]
    pub(crate) fn cached_compiled<T: Value>(
        &mut self,
        u: &Uncertain<T>,
    ) -> (Arc<Plan<T>>, Option<Arc<Kernel<T>>>) {
        if let Some((plan, kernel)) = self.cache.lookup::<T>(u.id()) {
            return (plan, kernel);
        }
        self.cache.misses += 1;
        let (plan, kernel) = self.timed_compile(u);
        self.cache.store(u.id(), plan.clone(), kernel.clone());
        (plan, kernel)
    }

    /// Lowers `u`'s kernel tape, honoring the session's column-precision
    /// mode. This is the one lowering entry point, so the test-only
    /// attempt counter sees every walk.
    fn lower_kernel<T: Value>(&mut self, u: &Uncertain<T>) -> Option<Arc<Kernel<T>>> {
        #[cfg(test)]
        {
            self.lower_attempts += 1;
        }
        #[cfg(feature = "f32-columns")]
        if self.f32_columns {
            return Kernel::lower_f32(u).map(Arc::new);
        }
        Kernel::lower(u).map(Arc::new)
    }

    /// Compiles `u`'s plan and lowers its kernel, charging the wall time
    /// to the session's plan-build counter when the `obs` feature is on.
    ///
    /// The "does not lower" verdict is memoized in the plan cache's
    /// persistent side table: closure-path networks whose plans churn
    /// through LRU eviction pay the futile lowering walk once, not on
    /// every recompile.
    #[allow(clippy::type_complexity)]
    fn timed_compile<T: Value>(
        &mut self,
        u: &Uncertain<T>,
    ) -> (Arc<Plan<T>>, Option<Arc<Kernel<T>>>) {
        #[cfg(feature = "obs")]
        let start = std::time::Instant::now();
        let plan = Arc::new(Plan::compile(u));
        let kernel = if self.cache.known_no_tape(u.id()) {
            None
        } else {
            let kernel = self.lower_kernel(u);
            if kernel.is_none() {
                self.cache.note_no_tape(u.id());
            }
            kernel
        };
        #[cfg(feature = "obs")]
        {
            self.plan_build_ns += start.elapsed().as_nanos() as u64;
        }
        (plan, kernel)
    }

    /// The executor for `u`: the cached plan in the common case, a fresh
    /// compile on miss, or the equivalent tree-walk when the network is too
    /// deep to evaluate through nested plan closures without risking the
    /// stack.
    fn executor<T: Value>(&mut self, u: &Uncertain<T>) -> Exec<T> {
        if let Some((plan, kernel)) = self.cache.lookup::<T>(u.id()) {
            return Exec::Plan { plan, kernel };
        }
        self.cache.misses += 1;
        if network_depth(u) > MAX_PLAN_DEPTH {
            return Exec::Tree(u.clone());
        }
        let (plan, kernel) = self.timed_compile(u);
        self.cache.store(u.id(), plan.clone(), kernel.clone());
        Exec::Plan { plan, kernel }
    }

    /// One seed drawn from the session's policy as its own query — used to
    /// spawn derived deterministic components (evaluators, sub-sessions).
    pub(crate) fn derive_seed(&mut self) -> u64 {
        self.seeds.derive_seed()
    }

    /// Legacy shim hook: one per-sample seed from the session's stream
    /// (sequential mode: the next `u64` of the shared stream). Only the
    /// stream-equivalence tests drive the legacy protocol directly now.
    #[cfg(all(test, feature = "legacy-sampler"))]
    pub(crate) fn next_stream_seed(&mut self) -> u64 {
        self.seeds.derive_seed()
    }

    /// Legacy shim hook: bumps the joint-sample counter by `n`.
    #[cfg(all(test, feature = "legacy-sampler"))]
    pub(crate) fn count_joint_samples(&mut self, n: u64) {
        self.joint_samples += n;
    }

    // -- analytic backend -------------------------------------------------

    /// The closed-form law of a boolean network, if the analytic backend
    /// recognizes it — `Pr[cond]` for Bernoulli evidence chains and
    /// linear-Gaussian comparisons. Memoized beside the plan cache, so
    /// repeated probes (and the queries that follow) pay the graph walk
    /// once per root. Strategy-independent: this reports *recognition*;
    /// whether a query uses the law is [`EvalConfig::strategy`]'s call.
    /// Draws nothing and never touches the seed stream.
    pub fn analyze_bool(&mut self, cond: &Uncertain<bool>) -> Option<BoolLaw> {
        self.bool_law(cond)
    }

    /// Scalar twin of [`Session::analyze_bool`]: the closed-form moments
    /// (and, for all-Gaussian networks, the full law) of an `f64` network
    /// the analytic backend recognizes.
    pub fn analyze_f64(&mut self, u: &Uncertain<f64>) -> Option<ScalarLaw> {
        self.scalar_law(u)
    }

    /// The analytic verdict for a boolean root: analyzed once on first
    /// sight, then served from the plan cache's eviction-immune memo
    /// (negative verdicts included, so unrecognized graphs pay the walk
    /// once, not once per query).
    fn bool_law(&mut self, cond: &Uncertain<bool>) -> Option<BoolLaw> {
        let id = cond.node().id();
        match self.cache.known_exact_bool(id) {
            Some(verdict) => verdict,
            None => {
                #[cfg(test)]
                {
                    self.exact_analyses += 1;
                }
                let verdict = exact::analyze_bool(&(cond.node().clone() as Arc<dyn NodeInfo>));
                self.cache.note_exact_bool(id, verdict);
                verdict
            }
        }
    }

    /// Scalar twin of [`Session::bool_law`].
    fn scalar_law(&mut self, u: &Uncertain<f64>) -> Option<ScalarLaw> {
        let id = u.node().id();
        match self.cache.known_exact_f64(id) {
            Some(verdict) => verdict,
            None => {
                #[cfg(test)]
                {
                    self.exact_analyses += 1;
                }
                let verdict = exact::analyze_f64(&(u.node().clone() as Arc<dyn NodeInfo>));
                self.cache.note_exact_f64(id, verdict);
                verdict
            }
        }
    }

    // -- queries ----------------------------------------------------------

    /// Draws `n` joint samples of `exec` as one query. Shards across the
    /// worker pool when the executor is a plan, the seeding policy is
    /// index-based, and the batch is large enough to amortize spawning.
    fn draw<T: Value>(&mut self, exec: &Exec<T>, n: usize) -> Vec<T> {
        self.joint_samples += n as u64;
        let threads = self.threads;
        let ctx = &mut self.ctx;
        let mut q = self.seeds.begin_query();
        if threads > 1 && n >= PAR_MIN_BATCH {
            if let Some(substream) = q.shardable() {
                if let Some(k) = exec.kernel() {
                    return kernel::sharded_batch(k, substream, 0, n, threads);
                }
                if let Some(plan) = exec.plan() {
                    return sample_batch_sharded(plan, substream, 0, n, threads);
                }
            }
        }
        if let Some(k) = exec.kernel() {
            // Serial columnar path. Seeds still come off the query stream
            // one by one (a sequential-policy stream is order-dependent),
            // collected a chunk at a time so the tape runs column-wise
            // over bounded buffers.
            let mut out = Vec::with_capacity(n);
            let mut state = k.new_state();
            let mut seeds: Vec<u64> = Vec::with_capacity(KERNEL_CHUNK.min(n));
            let mut done = 0;
            while done < n {
                let take = KERNEL_CHUNK.min(n - done);
                seeds.clear();
                seeds.extend((0..take).map(|_| q.next()));
                k.run_into(&seeds, &mut state, &mut out);
                done += take;
            }
            return out;
        }
        exec.install(ctx);
        (0..n)
            .map(|_| {
                ctx.reseed(q.next());
                exec.evaluate(ctx)
            })
            .collect()
    }

    /// Draws one joint sample of the network rooted at `u`.
    pub fn sample<T: Value>(&mut self, u: &Uncertain<T>) -> T {
        let exec = self.executor(u);
        self.joint_samples += 1;
        let seed = self.seeds.derive_seed();
        exec.install(&mut self.ctx);
        self.ctx.reseed(seed);
        exec.evaluate(&mut self.ctx)
    }

    /// Draws `n` joint samples of the network rooted at `u`.
    pub fn samples<T: Value>(&mut self, u: &Uncertain<T>, n: usize) -> Vec<T> {
        let exec = self.executor(u);
        self.draw(&exec, n)
    }

    /// One joint sample through the uncompiled tree-walk interpreter — the
    /// reference semantics every compiled [`Plan`] must reproduce bitwise.
    ///
    /// Consumes one seed from the session's stream exactly like
    /// [`Session::sample`], so seeded experiments may interleave the two
    /// forms freely; only throughput differs. The plan cache is bypassed
    /// entirely. Exposed for equivalence tests and the interpreter-vs-plan
    /// benchmarks.
    pub fn sample_interpreted<T: Value>(&mut self, u: &Uncertain<T>) -> T {
        let exec = Exec::Tree(u.clone());
        self.joint_samples += 1;
        let seed = self.seeds.derive_seed();
        self.ctx.reseed(seed);
        exec.evaluate(&mut self.ctx)
    }

    /// The paper's `E` operator: the mean of `n` joint samples — or the
    /// closed-form mean with zero samples when the session strategy admits
    /// the analytic backend and the network is recognized.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or under [`EvalStrategy::ExactOnly`] on a graph
    /// the analytic backend does not recognize (use [`Session::try_e`] to
    /// report that case as [`Error::NotAnalytic`] instead).
    pub fn e(&mut self, u: &Uncertain<f64>, n: usize) -> f64 {
        self.try_e(u, n)
            .expect("ExactOnly strategy on a non-analytic graph")
    }

    /// [`Session::e`] reporting strategy errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotAnalytic`] when the strategy is
    /// [`EvalStrategy::ExactOnly`] and the graph is not recognized.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn try_e(&mut self, u: &Uncertain<f64>, n: usize) -> Result<f64, Error> {
        assert!(n > 0, "expected value needs at least one sample");
        if self.config.strategy != EvalStrategy::SamplingOnly {
            if let Some(law) = self.scalar_law(u) {
                // Consume exactly one query index (like every query) while
                // drawing zero samples, so following queries in a substream
                // session are bitwise unaffected by the fast path.
                let _ = self.seeds.begin_query();
                self.exact_hits += 1;
                return Ok(law.mean);
            }
            if self.config.strategy == EvalStrategy::ExactOnly {
                return Err(NotAnalyticError { query: "e" }.into());
            }
        }
        // Summed in sample-index order so the result is identical for any
        // worker count.
        Ok(self.samples(u, n).iter().sum::<f64>() / n as f64)
    }

    /// Generalized expectation: the mean of `score` over `n` joint samples
    /// (how `E` extends to non-`f64` payloads).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expect_by<T: Value>(
        &mut self,
        u: &Uncertain<T>,
        n: usize,
        score: impl Fn(&T) -> f64,
    ) -> f64 {
        assert!(n > 0, "expected value needs at least one sample");
        self.samples(u, n).iter().map(score).sum::<f64>() / n as f64
    }

    /// A full descriptive summary (mean, variance, quantiles, coverage
    /// intervals) from `n` joint samples — or, when the session strategy
    /// admits the analytic backend and the network reduces to a Gaussian,
    /// an exact summary with closed-form moments and an analytic quantile
    /// grid, drawn with zero samples.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`, sampling produced non-finite values,
    /// or [`EvalStrategy::ExactOnly`] was demanded on a graph the analytic
    /// backend cannot summarize exactly.
    pub fn stats(&mut self, u: &Uncertain<f64>, n: usize) -> Result<Summary, Error> {
        Ok(self.stats_with_provenance(u, n)?.summary)
    }

    /// [`Session::stats`] with the answer's [`Provenance`] attached.
    ///
    /// The exact path needs the full shape, not just moments, so it fires
    /// only for networks whose law is Gaussian (affine maps of Gaussian
    /// leaves); moment-only recognitions (mixed leaf families) fall back
    /// to sampling under [`EvalStrategy::Auto`] and error under
    /// [`EvalStrategy::ExactOnly`]. An exact summary carries `n`
    /// synthetic observations placed at the law's mid-quantiles, so
    /// `quantile`/`min`/`max` read off the closed-form CDF while
    /// `mean`/`variance` are the exact moments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::stats`].
    pub fn stats_with_provenance(
        &mut self,
        u: &Uncertain<f64>,
        n: usize,
    ) -> Result<StatsOutcome, Error> {
        if self.config.strategy != EvalStrategy::SamplingOnly {
            match self.scalar_law(u) {
                Some(law) if law.gaussian => {
                    let summary = exact_summary(&law, n)?;
                    let _ = self.seeds.begin_query();
                    self.exact_hits += 1;
                    return Ok(StatsOutcome {
                        summary,
                        provenance: Provenance::Exact { method: law.method },
                    });
                }
                _ if self.config.strategy == EvalStrategy::ExactOnly => {
                    return Err(NotAnalyticError { query: "stats" }.into());
                }
                _ => {}
            }
        }
        let summary = Summary::from_slice(&self.samples(u, n))?;
        Ok(StatsOutcome {
            summary,
            provenance: Provenance::Sampled { samples: n },
        })
    }

    /// A sampled histogram of `u` on `[low, high)` over `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the histogram bounds/bins are invalid.
    pub fn histogram(
        &mut self,
        u: &Uncertain<f64>,
        n: usize,
        low: f64,
        high: f64,
        bins: usize,
    ) -> Result<Histogram, StatsError> {
        let mut hist = Histogram::new(low, high, bins)?;
        hist.extend(self.samples(u, n));
        Ok(hist)
    }

    /// Runs the SPRT for `Pr[cond] > threshold` under an explicit
    /// configuration, reporting parameter errors instead of panicking.
    ///
    /// When `config.strategy` admits the analytic backend and the
    /// condition's graph is recognized (a Bernoulli evidence chain or a
    /// linear-Gaussian comparison), the decision is made in closed form
    /// with **zero samples** and the outcome carries
    /// [`Provenance::Exact`]; every other graph is decided by sampling,
    /// bitwise-identically to [`EvalStrategy::SamplingOnly`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Stats`] if `threshold`/`config` are out of range
    /// (e.g. `threshold ∉ (0, 1)`), and [`Error::NotAnalytic`] if
    /// [`EvalStrategy::ExactOnly`] was demanded on an unrecognized graph.
    pub fn try_evaluate(
        &mut self,
        cond: &Uncertain<bool>,
        threshold: f64,
        config: &EvalConfig,
    ) -> Result<HypothesisOutcome, Error> {
        let outcome = self.try_evaluate_until(cond, threshold, config, |_| true)?;
        Ok(outcome.expect("unconditional keep_going never aborts"))
    }

    /// [`Session::try_evaluate`] with a cooperative abort hook, for
    /// callers that bound a decision's wall-clock time (per-request
    /// deadlines in an evaluation service).
    ///
    /// `keep_going(n)` is consulted before every SPRT batch with the
    /// samples drawn so far; returning `false` abandons the decision and
    /// the method yields `Ok(None)`. An abandoned decision still consumes
    /// exactly one query index of the session's seed stream (like every
    /// query), so in a substream session the *following* queries are
    /// bitwise unaffected by whether this one was aborted. When
    /// `keep_going` stays `true`, the outcome is exactly the
    /// [`Session::try_evaluate`] outcome.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Stats`] if `threshold`/`config` are out of range,
    /// and [`Error::NotAnalytic`] under [`EvalStrategy::ExactOnly`] on an
    /// unrecognized graph.
    pub fn try_evaluate_until(
        &mut self,
        cond: &Uncertain<bool>,
        threshold: f64,
        config: &EvalConfig,
        keep_going: impl FnMut(usize) -> bool,
    ) -> Result<Option<HypothesisOutcome>, Error> {
        let test = match &self.cached_test {
            Some((c, t, test)) if *c == *config && *t == threshold => *test,
            _ => {
                let test = config.sequential_test(threshold)?;
                self.cached_test = Some((*config, threshold, test));
                test
            }
        };
        if config.strategy != EvalStrategy::SamplingOnly {
            if let Some(law) = self.bool_law(cond) {
                // The analytic fast path: decide in closed form with zero
                // samples. Like every query (aborted ones included), it
                // consumes exactly one query index of the seed stream, so
                // subsequent queries in a substream session are bitwise
                // unaffected by which path answered this one. The decision
                // is conclusive iff `Pr[cond]` lies outside the SPRT's
                // indifference region `threshold ± δ` — the same region a
                // sampled test is calibrated to resolve.
                let _ = self.seeds.begin_query();
                self.exact_hits += 1;
                #[cfg(feature = "obs")]
                {
                    self.last_dispatch = Some(Dispatch::Exact);
                }
                return Ok(Some(HypothesisOutcome {
                    threshold,
                    accepted: law.p > threshold,
                    conclusive: (law.p - threshold).abs() > config.delta,
                    samples: 0,
                    estimate: law.p,
                    provenance: Provenance::Exact { method: law.method },
                }));
            }
            if config.strategy == EvalStrategy::ExactOnly {
                return Err(NotAnalyticError { query: "evaluate" }.into());
            }
        }
        let exec = self.executor(cond);
        // Tracing state: dormant unless a recorder is installed. The
        // per-batch tracing work (a success tally and one LLR evaluation)
        // happens inside the batch generator so the recorded trajectory
        // is exactly the sequence of states the stopping rule inspected.
        #[cfg(feature = "obs")]
        let tracing = self.recorder.is_some();
        #[cfg(feature = "obs")]
        let started = tracing.then(std::time::Instant::now);
        #[cfg(feature = "obs")]
        let mut points: Vec<TracePoint> = Vec::new();
        #[cfg(feature = "obs")]
        let mut traced_successes: u64 = 0;
        let ctx = &mut self.ctx;
        let mut q = self.seeds.begin_query();
        let mut drawn = 0usize;
        let outcome = if let Some(k) = exec.kernel().cloned() {
            // Columnar decision loop: one reused register file and bool
            // buffer across every batch of this decision, successes
            // counted straight off the root column.
            #[cfg(feature = "obs")]
            {
                self.last_dispatch = Some(Dispatch::Kernel);
            }
            let mut state = k.new_state();
            let mut seeds: Vec<u64> = Vec::new();
            let mut batch: Vec<bool> = Vec::new();
            test.run_counted_while(
                |take| {
                    drawn += take;
                    batch.clear();
                    let mut done = 0;
                    while done < take {
                        let chunk = KERNEL_CHUNK.min(take - done);
                        seeds.clear();
                        seeds.extend((0..chunk).map(|_| q.next()));
                        k.run_into(&seeds, &mut state, &mut batch);
                        done += chunk;
                    }
                    let successes = batch.iter().filter(|&&b| b).count() as u64;
                    #[cfg(feature = "obs")]
                    if tracing {
                        traced_successes += successes;
                        points.push(TracePoint {
                            samples: drawn,
                            successes: traced_successes,
                            llr: test
                                .sprt()
                                .log_likelihood_ratio(traced_successes, drawn as u64),
                        });
                    }
                    successes
                },
                keep_going,
            )
        } else {
            #[cfg(feature = "obs")]
            {
                self.last_dispatch = Some(Dispatch::Closure);
            }
            exec.install(ctx);
            test.run_batched_while(
                |k| {
                    drawn += k;
                    let batch: Vec<bool> = (0..k)
                        .map(|_| {
                            ctx.reseed(q.next());
                            exec.evaluate(ctx)
                        })
                        .collect();
                    #[cfg(feature = "obs")]
                    if tracing {
                        traced_successes += batch.iter().filter(|&&b| b).count() as u64;
                        points.push(TracePoint {
                            samples: drawn,
                            successes: traced_successes,
                            llr: test
                                .sprt()
                                .log_likelihood_ratio(traced_successes, drawn as u64),
                        });
                    }
                    batch
                },
                keep_going,
            )
        };
        // Aborted tests still drew their completed batches; count them.
        self.joint_samples += drawn as u64;
        #[cfg(feature = "obs")]
        if tracing {
            let stopping = match &outcome {
                None => StoppingReason::Aborted,
                Some(o) if !o.conclusive => StoppingReason::BudgetCapped,
                Some(o) if o.decision == TestDecision::AcceptAlternative => {
                    StoppingReason::Accepted
                }
                Some(_) => StoppingReason::Rejected,
            };
            let trace = DecisionTrace {
                root: cond.id(),
                threshold,
                upper: test.sprt().upper(),
                lower: test.sprt().lower(),
                batches: points,
                samples: drawn,
                successes: traced_successes,
                estimate: if drawn > 0 {
                    traced_successes as f64 / drawn as f64
                } else {
                    0.0
                },
                stopping,
                elapsed: started.map(|s| s.elapsed()).unwrap_or_default(),
            };
            if let Some(recorder) = self.recorder.as_mut() {
                recorder.record_decision(trace);
            }
        }
        Ok(outcome.map(|outcome| HypothesisOutcome {
            threshold,
            accepted: outcome.decision == TestDecision::AcceptAlternative,
            conclusive: outcome.conclusive,
            samples: outcome.samples,
            estimate: outcome.estimate,
            provenance: Provenance::Sampled {
                samples: outcome.samples,
            },
        }))
    }

    /// Runs the hypothesis test for `Pr[cond] > threshold` with the
    /// session's configuration and returns the complete outcome, including
    /// the ternary conclusive/inconclusive distinction.
    ///
    /// # Panics
    ///
    /// Panics if `threshold`/config are invalid (conditional thresholds are
    /// code literals, so this is a programming error).
    pub fn evaluate(&mut self, cond: &Uncertain<bool>, threshold: f64) -> HypothesisOutcome {
        let config = self.config;
        self.evaluate_with(cond, threshold, &config)
    }

    /// [`Session::evaluate`] with a per-call configuration override.
    ///
    /// # Panics
    ///
    /// Panics if `threshold`/`config` are invalid.
    pub fn evaluate_with(
        &mut self,
        cond: &Uncertain<bool>,
        threshold: f64,
        config: &EvalConfig,
    ) -> HypothesisOutcome {
        self.try_evaluate(cond, threshold, config)
            .expect("invalid conditional threshold or evaluation config")
    }

    /// The paper's **explicit conditional operator**: decides
    /// `Pr[cond] > threshold` by SPRT with the session's configuration.
    ///
    /// # Panics
    ///
    /// Panics if `threshold ∉ (0, 1)`.
    pub fn pr(&mut self, cond: &Uncertain<bool>, threshold: f64) -> bool {
        self.evaluate(cond, threshold).to_bool()
    }

    /// The paper's **implicit conditional operator**: "more likely than
    /// not", i.e. `Pr[cond] > 0.5`.
    pub fn is_probable(&mut self, cond: &Uncertain<bool>) -> bool {
        self.pr(cond, 0.5)
    }

    /// Fixed-size estimate of `Pr[cond]` from `n` joint samples (no early
    /// stopping).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn probability(&mut self, cond: &Uncertain<bool>, n: usize) -> f64 {
        assert!(n > 0, "probability estimate needs at least one sample");
        let hits = self.samples(cond, n).iter().filter(|&&b| b).count();
        hits as f64 / n as f64
    }

    /// Conditional-probability estimate `Pr[cond | evidence]` from `n`
    /// joint samples of the pair (both conditions evaluated in the *same*
    /// joint sample, so shared ancestry is respected).
    ///
    /// Returns `None` if the evidence never fired in `n` samples.
    ///
    /// The zipped pair is a fresh root per call, so it is deliberately
    /// compiled outside the plan cache rather than polluting it.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn probability_given(
        &mut self,
        cond: &Uncertain<bool>,
        evidence: &Uncertain<bool>,
        n: usize,
    ) -> Option<f64> {
        assert!(n > 0, "probability estimate needs at least one sample");
        let joint = cond.zip(evidence);
        let exec = if network_depth(&joint) > MAX_PLAN_DEPTH {
            Exec::Tree(joint)
        } else {
            let kernel = self.lower_kernel(&joint);
            Exec::Plan {
                plan: Arc::new(Plan::compile(&joint)),
                kernel,
            }
        };
        let mut evidence_hits = 0u64;
        let mut both_hits = 0u64;
        for (a, b) in self.draw(&exec, n) {
            if b {
                evidence_hits += 1;
                if a {
                    both_hits += 1;
                }
            }
        }
        (evidence_hits > 0).then(|| both_hits as f64 / evidence_hits as f64)
    }

    // -- ambient session --------------------------------------------------

    /// Runs `f` with this thread's **ambient session** — the implicit
    /// runtime behind the ergonomic, argument-free query methods
    /// ([`Uncertain::pr`], [`Uncertain::expected_value`], …). The ambient
    /// session is entropy-seeded per thread; install a seeded one with
    /// [`Session::install_ambient`] to make the ergonomic surface
    /// deterministic.
    ///
    /// Re-entrant calls (calling `with_ambient` from inside `f`) fall back
    /// to a throwaway entropy session rather than deadlocking; use explicit
    /// `*_in` methods inside `f` instead.
    pub fn with_ambient<R>(f: impl FnOnce(&mut Session) -> R) -> R {
        AMBIENT.with(|cell| match cell.try_borrow_mut() {
            Ok(mut session) => f(&mut session),
            Err(_) => f(&mut Session::new()),
        })
    }

    /// Replaces this thread's ambient session, returning the previous one.
    pub fn install_ambient(session: Session) -> Session {
        AMBIENT.with(|cell| cell.replace(session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ten_node_network() -> (Uncertain<f64>, Uncertain<bool>) {
        let x = Uncertain::normal(5.0, 1.0).unwrap();
        let y = Uncertain::normal(4.0, 1.0).unwrap();
        let z = Uncertain::uniform(0.0, 2.0).unwrap();
        let expr = (&x + &y) * 0.5 + (&x - &y) / 2.0 + &z * &z;
        let cond = expr.gt(3.0);
        (expr, cond)
    }

    #[test]
    fn seeded_sessions_reproduce_exactly() {
        let (expr, cond) = ten_node_network();
        let mut a = Session::seeded(7);
        let mut b = Session::seeded(7);
        assert_eq!(a.samples(&expr, 100), b.samples(&expr, 100));
        assert_eq!(a.e(&expr, 500), b.e(&expr, 500));
        assert_eq!(
            a.evaluate(&cond, 0.5),
            b.evaluate(&cond, 0.5),
            "same call sequence, same outcome"
        );
        assert_eq!(a.joint_samples(), b.joint_samples());
    }

    #[test]
    fn thread_count_never_changes_values() {
        let (expr, _) = ten_node_network();
        let mut serial = Session::seeded(11).with_threads(1);
        let mut sharded = Session::seeded(11).with_threads(4);
        assert_eq!(serial.samples(&expr, 5000), sharded.samples(&expr, 5000));
        assert_eq!(serial.e(&expr, 5000), sharded.e(&expr, 5000));
    }

    #[test]
    fn interpreted_samples_match_planned_samples() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let expr = (&x + &x) * &x;
        let mut a = Session::seeded(31);
        let mut b = Session::seeded(31);
        let planned: Vec<f64> = (0..50).map(|_| a.sample(&expr)).collect();
        let interpreted: Vec<f64> = (0..50).map(|_| b.sample_interpreted(&expr)).collect();
        assert_eq!(planned, interpreted);
        assert_eq!(b.cache_stats().misses, 0, "interpreter bypasses the cache");
        assert_eq!(b.joint_samples(), 50);
    }

    #[test]
    fn cache_hits_on_repeated_queries() {
        let (expr, cond) = ten_node_network();
        let mut s = Session::seeded(1);
        s.pr(&cond, 0.5);
        s.pr(&cond, 0.5);
        s.e(&expr, 100);
        s.e(&expr, 100);
        let stats = s.cache_stats();
        assert_eq!(stats.misses, 2, "two distinct roots compile once each");
        assert_eq!(stats.hits, 2, "repeat queries hit");
        assert_eq!(stats.entries, 2);
        assert!(stats.hit_rate() > 0.49);
    }

    #[test]
    fn cache_hit_answers_match_fresh_compiles() {
        let (expr, _) = ten_node_network();
        let mut cached = Session::seeded(3);
        let mut uncached = Session::seeded(3).with_cache_capacity(0);
        for _ in 0..5 {
            assert_eq!(cached.samples(&expr, 50), uncached.samples(&expr, 50));
        }
        assert!(cached.cache_stats().hits >= 4);
        assert_eq!(uncached.cache_stats().hits, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::normal(1.0, 1.0).unwrap();
        let z = Uncertain::normal(2.0, 1.0).unwrap();
        let mut s = Session::seeded(5).with_cache_capacity(2);
        s.sample(&x); // miss {x}
        s.sample(&y); // miss {x, y}
        s.sample(&x); // hit (x now most recent)
        s.sample(&z); // miss; evicts y
        assert_eq!(s.cache_stats().evictions, 1);
        s.sample(&y); // miss again (was evicted)
        let stats = s.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn capacity_one_still_answers_correctly() {
        let x = Uncertain::uniform(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(10.0, 11.0).unwrap();
        let mut s = Session::seeded(9).with_cache_capacity(1);
        let mut reference = Session::seeded(9).with_cache_capacity(64);
        for _ in 0..4 {
            assert_eq!(s.e(&x, 200), reference.e(&x, 200));
            assert_eq!(s.e(&y, 200), reference.e(&y, 200));
        }
        assert!(s.cache_stats().evictions >= 6, "thrashing at capacity 1");
    }

    #[test]
    fn invalidate_and_clear() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::normal(1.0, 1.0).unwrap();
        let mut s = Session::seeded(2);
        s.sample(&x);
        s.sample(&y);
        assert_eq!(s.cache_stats().entries, 2);
        assert!(s.invalidate(x.id()));
        assert!(!s.invalidate(x.id()), "already gone");
        assert_eq!(s.cache_stats().entries, 1);
        s.clear_cache();
        assert_eq!(s.cache_stats().entries, 0);
        // Counters survive clearing.
        assert!(s.cache_stats().misses >= 2);
    }

    #[test]
    fn sequential_mode_matches_legacy_sampler_stream() {
        // The compatibility claim that keeps every seeded experiment
        // stable: Session::sequential(s) draws the exact stream the
        // pre-runtime Sampler::seeded(s) drew.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let expr = &x * &x - &x;
        let mut session = Session::sequential(17);
        let via_session = session.samples(&expr, 25);
        // Reference: seed a StdRng the way Sampler::seeded did and replay
        // the historical per-sample protocol (one u64 per joint sample,
        // fresh tree-walk context each).
        let mut rng = StdRng::seed_from_u64(17);
        let via_legacy: Vec<f64> = (0..25)
            .map(|_| {
                let mut ctx = SampleContext::from_seed(rng.gen());
                expr.node().sample_value(&mut ctx)
            })
            .collect();
        assert_eq!(via_session, via_legacy);
    }

    #[test]
    fn session_config_drives_conditionals() {
        let b = Uncertain::bernoulli(0.5).unwrap();
        let mut s = Session::seeded(4).with_config(EvalConfig::default().with_max_samples(100));
        let o = s.evaluate(&b, 0.5);
        assert!(o.samples <= 100, "session cap applies: {}", o.samples);
    }

    #[test]
    fn joint_sample_accounting() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Session::seeded(6);
        let _ = s.samples(&x, 40);
        let _ = s.sample(&x);
        assert_eq!(s.joint_samples(), 41);
        let o = s.evaluate(&x.gt(0.0), 0.5);
        assert_eq!(s.joint_samples(), 41 + o.samples as u64);
        s.reset_joint_samples();
        assert_eq!(s.joint_samples(), 0);
    }

    #[test]
    fn probability_given_respects_shared_ancestry() {
        let u = Uncertain::uniform(0.0, 1.0).unwrap();
        let big = u.gt(0.8);
        let medium = u.gt(0.5);
        let mut s = Session::seeded(8);
        let p = s.probability_given(&big, &medium, 20_000).unwrap();
        assert!((p - 0.4).abs() < 0.02, "p={p}");
    }

    #[test]
    fn ambient_session_is_usable_and_replaceable() {
        let x = Uncertain::normal(1.0, 0.1).unwrap();
        let previous = Session::install_ambient(Session::seeded(123));
        let a = Session::with_ambient(|s| s.e(&x, 100));
        // Reinstall the same seed: the ergonomic surface reproduces.
        let _ = Session::install_ambient(Session::seeded(123));
        let b = Session::with_ambient(|s| s.e(&x, 100));
        assert_eq!(a, b);
        let _ = Session::install_ambient(previous);
    }

    #[test]
    fn very_deep_networks_fall_back_to_the_tree_walk() {
        // Evaluating a compiled plan nests closures to the network depth;
        // a session must survive pathological chains by tree-walking them
        // instead (the two paths are bitwise identical).
        let x = Uncertain::point(1.0);
        let mut expr = x.clone();
        for _ in 0..3000 {
            expr = expr + &x;
        }
        let mut s = Session::seeded(14);
        assert_eq!(s.sample(&expr), 3001.0);
        assert_eq!(s.samples(&expr, 3), vec![3001.0; 3]);
        let stats = s.cache_stats();
        assert_eq!(stats.entries, 0, "too deep to plan-cache");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn sessions_are_send() {
        // The contract a sharded service builds on: a Session (and the
        // networks it evaluates) can move into a shard thread.
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<Uncertain<f64>>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<Uncertain<bool>>();
    }

    #[test]
    fn resume_at_reproduces_an_evicted_sessions_future() {
        let (expr, cond) = ten_node_network();
        // Reference: one long-lived session answering 8 queries.
        let mut reference = Session::seeded(99);
        let mut expected: Vec<(f64, HypothesisOutcome)> = Vec::new();
        for _ in 0..4 {
            let e = reference.e(&expr, 200);
            let o = reference.evaluate(&cond, 0.5);
            expected.push((e, o));
        }
        // Same 8 queries, but the session is dropped (evicted) and
        // rebuilt with resume_at between every pair — the plan cache goes
        // cold each time, the values must not move.
        let mut cursor = 0;
        let mut got: Vec<(f64, HypothesisOutcome)> = Vec::new();
        for _ in 0..4 {
            let mut s = Session::seeded(99);
            s.resume_at(cursor);
            let e = s.e(&expr, 200);
            let o = s.evaluate(&cond, 0.5);
            got.push((e, o));
            cursor = s.query_index().expect("substream session");
        }
        assert_eq!(expected, got);
        assert_eq!(cursor, 8);
    }

    #[test]
    fn query_index_counts_queries_not_samples() {
        let (expr, _) = ten_node_network();
        let mut s = Session::seeded(1);
        assert_eq!(s.query_index(), Some(0));
        let _ = s.samples(&expr, 500); // one query, many samples
        assert_eq!(s.query_index(), Some(1));
        let _ = s.sample(&expr);
        assert_eq!(s.query_index(), Some(2));
        assert_eq!(Session::sequential(1).query_index(), None);
    }

    #[test]
    #[should_panic(expected = "cannot resume")]
    fn sequential_sessions_cannot_resume() {
        Session::sequential(3).resume_at(5);
    }

    #[test]
    fn try_evaluate_until_matches_try_evaluate_when_not_aborted() {
        let (_, cond) = ten_node_network();
        let cfg = EvalConfig::default();
        let mut a = Session::seeded(21);
        let mut b = Session::seeded(21);
        for threshold in [0.2, 0.5, 0.8] {
            let plain = a.try_evaluate(&cond, threshold, &cfg).unwrap();
            let gated = b
                .try_evaluate_until(&cond, threshold, &cfg, |_| true)
                .unwrap()
                .unwrap();
            assert_eq!(plain, gated);
        }
        assert_eq!(a.joint_samples(), b.joint_samples());
    }

    #[test]
    fn aborted_decision_consumes_one_query_and_nothing_more() {
        // A marginal conditional with a huge cap, aborted after 3 batches:
        // the *next* query must be bitwise identical to a session that
        // never ran the aborted decision past its own budget.
        let b = Uncertain::bernoulli(0.5).unwrap();
        let (expr, _) = ten_node_network();
        let cfg = EvalConfig::default().with_max_samples(1_000_000);
        let mut aborted = Session::seeded(55);
        let out = aborted
            .try_evaluate_until(&b, 0.5, &cfg, |n| n < 30)
            .unwrap();
        assert_eq!(out, None);
        assert_eq!(aborted.joint_samples(), 30, "three 10-sample batches ran");
        let after_abort = aborted.samples(&expr, 50);

        let mut clean = Session::seeded(55);
        let _ = clean.try_evaluate_until(&b, 0.5, &cfg, |n| n < 200);
        let after_longer = clean.samples(&expr, 50);
        assert_eq!(
            after_abort, after_longer,
            "the abort point must not leak into later queries"
        );
    }

    #[test]
    fn cache_stats_merge_counterwise() {
        let a = CacheStats {
            hits: 3,
            misses: 2,
            evictions: 1,
            entries: 2,
            capacity: 64,
        };
        let b = CacheStats {
            hits: 7,
            misses: 1,
            evictions: 0,
            entries: 1,
            capacity: 8,
        };
        let sum = a + b;
        assert_eq!(sum.hits, 10);
        assert_eq!(sum.misses, 3);
        assert_eq!(sum.evictions, 1);
        assert_eq!(sum.entries, 3);
        assert_eq!(sum.capacity, 72);
        assert_eq!([a, b].into_iter().sum::<CacheStats>(), sum);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, sum);
    }

    #[test]
    fn no_tape_verdict_survives_eviction_churn() {
        // `encapsulate` needs SampleContext machinery, so its network never
        // lowers to a kernel tape. The futile lowering walk must be paid
        // once per root, not once per LRU eviction.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let dynamic = x.encapsulate();
        let a = Uncertain::normal(1.0, 1.0).unwrap();
        let b = Uncertain::normal(2.0, 1.0).unwrap();
        let mut s = Session::seeded(33).with_cache_capacity(1);
        s.sample(&dynamic);
        assert!(s.lower_attempts >= 1, "first compile attempts to lower");
        for _ in 0..3 {
            s.sample(&a);
            s.sample(&b); // capacity 1: dynamic's plan is long evicted
            let attempts = s.lower_attempts;
            let misses = s.cache_stats().misses;
            s.sample(&dynamic);
            assert_eq!(
                s.cache_stats().misses,
                misses + 1,
                "plan really was evicted and recompiled"
            );
            assert_eq!(
                s.lower_attempts, attempts,
                "memoized no-tape verdict skips re-lowering"
            );
        }
        assert!(s.cache_stats().evictions >= 3);
    }

    #[test]
    fn lowerable_roots_are_not_memoized_as_no_tape() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let expr = &x + &x;
        let mut s = Session::seeded(34).with_cache_capacity(1);
        s.sample(&expr);
        let attempts = s.lower_attempts;
        let other = Uncertain::normal(5.0, 1.0).unwrap();
        s.sample(&other); // evicts expr
        s.sample(&expr); // recompile must re-lower (it tapes fine)
        assert_eq!(s.lower_attempts, attempts + 2);
    }

    #[test]
    fn exact_verdict_survives_eviction_churn() {
        // The analytic verdict is memoized beside the no-tape memo:
        // immune to LRU plan eviction, so a hot analytic root pays the
        // recognition walk once, not once per churned plan.
        let chain = {
            let x = Uncertain::normal(0.0, 1.0).unwrap();
            let mut sum = x.clone();
            for _ in 0..30 {
                sum = sum + &x;
            }
            sum.lt(100.0)
        };
        let a = Uncertain::normal(1.0, 1.0).unwrap();
        let b = Uncertain::normal(2.0, 1.0).unwrap();
        let config = EvalConfig::default().with_strategy(EvalStrategy::Auto);
        let mut s = Session::seeded(35)
            .with_strategy(EvalStrategy::Auto)
            .with_cache_capacity(1);
        let first = s.try_evaluate(&chain, 0.5, &config).unwrap();
        assert_eq!(first.samples, 0);
        assert_eq!(s.exact_analyses, 1);
        for _ in 0..3 {
            s.sample(&a);
            s.sample(&b); // capacity 1: churn the plan cache hard
            let outcome = s.try_evaluate(&chain, 0.5, &config).unwrap();
            assert_eq!(outcome.samples, 0);
            assert_eq!(s.exact_analyses, 1, "memoized verdict skips re-analysis");
        }
        assert_eq!(s.exact_hits(), 4);
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Session::seeded(10).with_cache_capacity(0);
        s.sample(&x);
        s.sample(&x);
        let stats = s.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
    }
}
