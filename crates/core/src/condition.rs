//! Conditional semantics: deciding `Uncertain<bool>` with hypothesis tests.
//!
//! A lifted comparison yields a Bernoulli whose parameter `p` is the
//! evidence for the condition. To branch, the program must turn that
//! Bernoulli into a concrete `bool` (paper §3.4):
//!
//! * the **implicit** operator asks `Pr[cond] > 0.5` — "more likely than
//!   not" ([`Uncertain::is_probable`]),
//! * the **explicit** operator asks `Pr[cond] > θ` for a developer-chosen
//!   threshold ([`Uncertain::pr`]), trading false positives against false
//!   negatives.
//!
//! Both are decided by Wald's SPRT (paper §4.3) with batching and a
//! termination cap, so easy conditionals cost a handful of samples and only
//! genuinely marginal ones approach the cap. [`Uncertain::evaluate_in`]
//! exposes the full outcome including the paper's *ternary* logic: a test
//! can be inconclusive, in which case neither `A < B` nor `A >= B` would
//! conclusively hold — [`HypothesisOutcome::expect_decided`] surfaces that
//! case as a typed error instead of a silent fallback.
//!
//! Every query comes in two forms (one convention across the crate): the
//! ergonomic method (`pr`, `is_probable`) uses the thread's ambient
//! [`Session`], and the explicit `*_in(&mut Session, ..)` form names the
//! session — which is what seeded experiments and services use. The old
//! `*_with(&mut Sampler, ..)` names are deprecated shims over the same
//! machinery.

use crate::error::ConfigError;
use crate::exact::ExactMethod;
use crate::runtime::Session;
#[cfg(feature = "legacy-sampler")]
use crate::sampler::Sampler;
use crate::uncertain::Uncertain;
use std::error::Error;
use std::fmt;
use uncertain_stats::{SequentialTest, StatsError, Summary};

/// Which evaluation backend a session may use to answer a query.
///
/// The default is [`EvalStrategy::SamplingOnly`] — the paper's SPRT
/// sampling path, bitwise-reproducible across releases. Opting into
/// [`EvalStrategy::Auto`] lets the session answer analytically tractable
/// graphs (linear-Gaussian comparisons, independent evidence chains; see
/// the `exact` module docs) in closed form with **zero samples drawn**,
/// falling back to sampling — bitwise identical to `SamplingOnly` —
/// for anything unrecognized. [`EvalStrategy::ExactOnly`] turns the
/// fallback into a typed error, for callers that must not pay sampling
/// cost silently.
///
/// # Examples
///
/// ```
/// use uncertain_core::{EvalStrategy, Provenance, Session, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(1.0, 1.0)?;
/// let mut s = Session::seeded(0).with_strategy(EvalStrategy::Auto);
/// let outcome = s.evaluate(&x.gt(0.0), 0.5);
/// assert!(outcome.is_true());
/// assert_eq!(outcome.samples, 0);
/// assert!(matches!(outcome.provenance, Provenance::Exact { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalStrategy {
    /// Answer exactly when the graph is recognized, sample otherwise.
    Auto,
    /// Always sample — the paper's SPRT path, and the default.
    #[default]
    SamplingOnly,
    /// Answer exactly or fail with [`Error::NotAnalytic`](crate::Error);
    /// never sample.
    ExactOnly,
}

/// Which backend produced a result — attached to [`HypothesisOutcome`]
/// and [`StatsOutcome`] so callers and tests can see who decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Provenance {
    /// The SPRT/Monte-Carlo sampling path, with the number of samples it
    /// drew.
    Sampled {
        /// Samples drawn to produce the result.
        samples: usize,
    },
    /// The analytic backend, with the closed form it used.
    Exact {
        /// The closed form that produced the result.
        method: ExactMethod,
    },
}

impl Provenance {
    /// Whether the result came from the analytic backend.
    pub fn is_exact(&self) -> bool {
        matches!(self, Provenance::Exact { .. })
    }
}

/// A [`Summary`] plus the [`Provenance`] of how it was computed —
/// returned by [`Session::stats_with_provenance`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsOutcome {
    /// The descriptive summary.
    pub summary: Summary,
    /// Which backend produced it.
    pub provenance: Provenance,
}

/// Configuration for conditional evaluation (the SPRT of paper §4.3).
///
/// This is the single home for the SPRT knobs: build one and hand it to
/// [`Session::with_config`] (or to a per-call `evaluate_with`) instead of
/// threading individual parameters through call sites.
///
/// # Examples
///
/// ```
/// use uncertain_core::{EvalConfig, Session, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let strict = EvalConfig::default()
///     .with_error_bounds(0.01, 0.01)
///     .with_max_samples(20_000);
/// let x = Uncertain::normal(1.0, 1.0)?;
/// let mut session = Session::seeded(0).with_config(strict);
/// let outcome = x.gt(0.0).evaluate_in(&mut session, 0.5);
/// assert!(outcome.is_true());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Half-width of the SPRT indifference region around the threshold.
    pub delta: f64,
    /// Bound on false acceptance of the condition (type-I error).
    pub alpha: f64,
    /// Bound on false rejection of the condition (type-II error).
    pub beta: f64,
    /// Samples drawn per SPRT step (the paper's `k`, default 10).
    pub batch: usize,
    /// Termination cap on total samples per conditional.
    pub max_samples: usize,
    /// Which backend may answer (default: [`EvalStrategy::SamplingOnly`]).
    pub strategy: EvalStrategy,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            delta: SequentialTest::DEFAULT_DELTA,
            alpha: SequentialTest::DEFAULT_ALPHA,
            beta: SequentialTest::DEFAULT_BETA,
            batch: SequentialTest::DEFAULT_BATCH,
            max_samples: SequentialTest::DEFAULT_MAX_SAMPLES,
            strategy: EvalStrategy::SamplingOnly,
        }
    }
}

impl EvalConfig {
    /// Starts a validating builder: the path that *rejects* nonsensical
    /// settings (α/β outside `(0, 1)`, a zero batch, a cap smaller than
    /// one batch) instead of letting them silently produce a degenerate
    /// SPRT at decision time. Unset knobs keep their defaults.
    ///
    /// The plain struct-literal / `with_*` path remains available for
    /// call sites whose settings are code literals.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{ConfigError, EvalConfig};
    ///
    /// let strict = EvalConfig::builder()
    ///     .alpha(0.01)
    ///     .beta(0.01)
    ///     .batch(20)
    ///     .max_samples(20_000)
    ///     .build()
    ///     .expect("valid settings");
    /// assert_eq!(strict.batch, 20);
    ///
    /// // Nonsense is rejected, not deferred to the decision site:
    /// assert_eq!(
    ///     EvalConfig::builder().alpha(1.5).build(),
    ///     Err(ConfigError::Alpha(1.5)),
    /// );
    /// assert_eq!(
    ///     EvalConfig::builder().batch(0).build(),
    ///     Err(ConfigError::ZeroBatch),
    /// );
    /// ```
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder {
            config: EvalConfig::default(),
        }
    }

    /// Returns a copy with the given indifference half-width.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Returns a copy with the given α/β error bounds.
    pub fn with_error_bounds(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Returns a copy with the given SPRT batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Returns a copy with the given termination cap.
    pub fn with_max_samples(mut self, max_samples: usize) -> Self {
        self.max_samples = max_samples;
        self
    }

    /// Returns a copy with the given [`EvalStrategy`].
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builds the sequential test for a conditional at `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the threshold or config parameters are out
    /// of range.
    pub fn sequential_test(&self, threshold: f64) -> Result<SequentialTest, StatsError> {
        SequentialTest::with_params(
            threshold,
            self.delta,
            self.alpha,
            self.beta,
            self.batch,
            self.max_samples,
        )
    }
}

/// The validating builder behind [`EvalConfig::builder`].
///
/// Accumulates the SPRT knobs and checks them *jointly* at
/// [`build`](EvalConfigBuilder::build) (the cap-vs-batch constraint spans
/// two fields, so per-setter checks cannot express it).
#[derive(Debug, Clone, Copy)]
pub struct EvalConfigBuilder {
    config: EvalConfig,
}

impl EvalConfigBuilder {
    /// Sets the indifference half-width δ (must end up in `(0, 0.5)`).
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Sets the type-I error bound α (must end up in `(0, 1)`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the type-II error bound β (must end up in `(0, 1)`).
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Sets the SPRT batch size `k` (must end up at least 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.config.batch = batch;
        self
    }

    /// Sets the termination cap (must end up holding at least one batch).
    pub fn max_samples(mut self, max_samples: usize) -> Self {
        self.config.max_samples = max_samples;
        self
    }

    /// Sets the [`EvalStrategy`] (any value is valid; no joint checks).
    pub fn strategy(mut self, strategy: EvalStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Validates the accumulated settings.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, checking α, β, δ, the
    /// batch size, and the cap in that order.
    pub fn build(self) -> Result<EvalConfig, ConfigError> {
        let c = self.config;
        if !(c.alpha > 0.0 && c.alpha < 1.0) {
            return Err(ConfigError::Alpha(c.alpha));
        }
        if !(c.beta > 0.0 && c.beta < 1.0) {
            return Err(ConfigError::Beta(c.beta));
        }
        if !(c.delta > 0.0 && c.delta < 0.5) {
            return Err(ConfigError::Delta(c.delta));
        }
        if c.batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if c.max_samples < c.batch {
            return Err(ConfigError::CapBelowBatch {
                max_samples: c.max_samples,
                batch: c.batch,
            });
        }
        Ok(c)
    }
}

/// The full result of evaluating a conditional on uncertain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypothesisOutcome {
    /// The threshold θ the evidence was tested against.
    pub threshold: f64,
    /// Whether `Pr[cond] > θ` was accepted (the branch decision).
    pub accepted: bool,
    /// Whether a Wald boundary was crossed (`false` = the sample cap forced
    /// a fallback decision; the paper's ternary "neither branch" case).
    pub conclusive: bool,
    /// Bernoulli samples drawn for this conditional (0 when the analytic
    /// backend decided).
    pub samples: usize,
    /// Estimate of `Pr[cond]` — empirical from samples, or the exact
    /// probability when the analytic backend decided.
    pub estimate: f64,
    /// Which backend decided (see [`Provenance`]).
    pub provenance: Provenance,
}

impl HypothesisOutcome {
    /// Conclusively true: the SPRT accepted `Pr[cond] > θ`.
    pub fn is_true(&self) -> bool {
        self.accepted && self.conclusive
    }

    /// Conclusively false: the SPRT accepted `Pr[cond] ≤ θ`.
    pub fn is_false(&self) -> bool {
        !self.accepted && self.conclusive
    }

    /// Neither hypothesis reached significance before the cap — the
    /// third value of the paper's ternary logic.
    pub fn is_inconclusive(&self) -> bool {
        !self.conclusive
    }

    /// Collapses to a `bool` (the fallback the runtime uses inside `if`):
    /// the accepted branch, whether or not the test was conclusive.
    pub fn to_bool(&self) -> bool {
        self.accepted
    }

    /// The decision, or a typed error if the test was inconclusive —
    /// for callers that must *not* silently take the fallback branch
    /// (the paper's ternary logic made explicit in the type system).
    ///
    /// # Errors
    ///
    /// Returns [`InconclusiveError`] (carrying the threshold, sample count,
    /// and running estimate) when the sample cap forced a fallback
    /// decision instead of a Wald boundary crossing.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let likely = Uncertain::bernoulli(0.95)?;
    /// let mut session = Session::seeded(7);
    /// let outcome = session.evaluate(&likely, 0.5);
    /// assert_eq!(outcome.expect_decided()?, true);
    /// # Ok(())
    /// # }
    /// ```
    pub fn expect_decided(&self) -> Result<bool, InconclusiveError> {
        if self.conclusive {
            Ok(self.accepted)
        } else {
            Err(InconclusiveError {
                threshold: self.threshold,
                samples: self.samples,
                estimate: self.estimate,
            })
        }
    }
}

/// A conditional's SPRT hit its sample cap without crossing either Wald
/// boundary: the evidence is statistically indistinguishable from the
/// threshold, so neither branch is conclusively right.
///
/// Returned by [`HypothesisOutcome::expect_decided`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InconclusiveError {
    /// The threshold θ the evidence was tested against.
    pub threshold: f64,
    /// Samples drawn before the cap stopped the test.
    pub samples: usize,
    /// The running estimate of `Pr[cond]` when the test stopped.
    pub estimate: f64,
}

impl fmt::Display for InconclusiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conditional inconclusive at threshold {} after {} samples (estimate {:.4})",
            self.threshold, self.samples, self.estimate
        )
    }
}

impl Error for InconclusiveError {}

impl Uncertain<bool> {
    /// The paper's **explicit conditional operator**: decides
    /// `Pr[self] > threshold` by SPRT through the thread's ambient
    /// [`Session`] (entropy-seeded unless one was installed with
    /// [`Session::install_ambient`]).
    ///
    /// Use [`Uncertain::pr_in`] to name the session explicitly —
    /// deterministic when the session is seeded.
    ///
    /// # Panics
    ///
    /// Panics if `threshold ∉ (0, 1)`.
    pub fn pr(&self, threshold: f64) -> bool {
        Session::with_ambient(|s| s.pr(self, threshold))
    }

    /// Explicit conditional in a named session (deterministic when the
    /// session is seeded; uses the session's [`EvalConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if `threshold ∉ (0, 1)`.
    pub fn pr_in(&self, session: &mut Session, threshold: f64) -> bool {
        session.pr(self, threshold)
    }

    /// Deprecated `Sampler` form of [`Uncertain::pr_in`].
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(since = "0.2.0", note = "use `pr_in(&mut Session, threshold)`")]
    pub fn pr_with(&self, threshold: f64, sampler: &mut Sampler) -> bool {
        sampler.session_mut().pr(self, threshold)
    }

    /// The paper's **implicit conditional operator**: "more likely than
    /// not", i.e. `Pr[self] > 0.5`, in the thread's ambient [`Session`].
    pub fn is_probable(&self) -> bool {
        self.pr(0.5)
    }

    /// Implicit conditional in a named session.
    pub fn is_probable_in(&self, session: &mut Session) -> bool {
        session.is_probable(self)
    }

    /// Deprecated `Sampler` form of [`Uncertain::is_probable_in`].
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(since = "0.2.0", note = "use `is_probable_in(&mut Session)`")]
    pub fn is_probable_with(&self, sampler: &mut Sampler) -> bool {
        sampler.session_mut().is_probable(self)
    }

    /// Runs the hypothesis test in a named session and returns the
    /// complete outcome, including sample counts and the ternary
    /// conclusive/inconclusive distinction (see
    /// [`HypothesisOutcome::expect_decided`]). The session's
    /// [`EvalConfig`] governs the SPRT; use
    /// [`Session::evaluate_with`] for a per-call override.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or the session's config are invalid (e.g.
    /// threshold outside `(0, 1)`); conditional thresholds are code
    /// literals, so this is a programming error rather than a recoverable
    /// condition.
    pub fn evaluate_in(&self, session: &mut Session, threshold: f64) -> HypothesisOutcome {
        session.evaluate(self, threshold)
    }

    /// Deprecated `Sampler` form of [`Uncertain::evaluate_in`].
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(
        since = "0.2.0",
        note = "use `evaluate_in(&mut Session, threshold)` with `Session::with_config`"
    )]
    pub fn evaluate(
        &self,
        threshold: f64,
        sampler: &mut Sampler,
        config: &EvalConfig,
    ) -> HypothesisOutcome {
        sampler.session_mut().evaluate_with(self, threshold, config)
    }

    /// Fixed-size estimate of the Bernoulli parameter `Pr[self]` from `n`
    /// joint samples (no early stopping). Used by the evaluation harness
    /// to plot evidence curves (e.g. Fig. 4's ticket probabilities).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn probability_in(&self, session: &mut Session, n: usize) -> f64 {
        session.probability(self, n)
    }

    /// Deprecated `Sampler` form of [`Uncertain::probability_in`].
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(since = "0.2.0", note = "use `probability_in(&mut Session, n)`")]
    pub fn probability_with(&self, sampler: &mut Sampler, n: usize) -> f64 {
        sampler.session_mut().probability(self, n)
    }

    /// Conditional-probability estimate `Pr[self | evidence]` from `n`
    /// joint samples of the pair: both conditions are evaluated in the
    /// *same* joint sample, so shared ancestry between them is respected
    /// (the whole point of the Bayesian network).
    ///
    /// Returns `None` if the evidence never fired in `n` samples — the
    /// rare-observation regime where rejection-style conditioning
    /// degenerates (the paper's Church anecdote, §6).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::uniform(0.0, 1.0)?;
    /// let big = x.gt(0.8);
    /// let medium = x.gt(0.5);
    /// let mut session = Session::sequential(1);
    /// // Pr[x > 0.8 | x > 0.5] = 0.2 / 0.5 = 0.4.
    /// let p = big.probability_given_in(&medium, &mut session, 20_000).unwrap();
    /// assert!((p - 0.4).abs() < 0.02);
    /// # Ok(())
    /// # }
    /// ```
    pub fn probability_given_in(
        &self,
        evidence: &Uncertain<bool>,
        session: &mut Session,
        n: usize,
    ) -> Option<f64> {
        session.probability_given(self, evidence, n)
    }

    /// Deprecated `Sampler` form of [`Uncertain::probability_given_in`].
    #[cfg(feature = "legacy-sampler")]
    #[deprecated(
        since = "0.2.0",
        note = "use `probability_given_in(&evidence, &mut Session, n)`"
    )]
    pub fn probability_given(
        &self,
        evidence: &Uncertain<bool>,
        sampler: &mut Sampler,
        n: usize,
    ) -> Option<f64> {
        sampler.session_mut().probability_given(self, evidence, n)
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn expect_decided_distinguishes_ternary_outcomes() {
        let mut session = Session::sequential(12);
        let easy = Uncertain::bernoulli(0.95).unwrap();
        assert_eq!(
            easy.evaluate_in(&mut session, 0.5).expect_decided(),
            Ok(true)
        );

        // Evidence pinned at the threshold: cap forces inconclusive.
        let marginal = Uncertain::bernoulli(0.5).unwrap();
        let mut capped =
            Session::sequential(13).with_config(EvalConfig::default().with_max_samples(100));
        let mut saw_inconclusive = false;
        for _ in 0..20 {
            let o = marginal.evaluate_in(&mut capped, 0.5);
            if let Err(e) = o.expect_decided() {
                saw_inconclusive = true;
                assert_eq!(e.samples, 100);
                assert_eq!(e.threshold, 0.5);
                let msg = e.to_string();
                assert!(msg.contains("inconclusive"), "msg={msg}");
            }
        }
        assert!(saw_inconclusive);
    }

    #[test]
    fn config_builders_apply() {
        let cfg = EvalConfig::default()
            .with_delta(0.1)
            .with_error_bounds(0.01, 0.02)
            .with_batch(5)
            .with_max_samples(50);
        assert_eq!(cfg.delta, 0.1);
        assert_eq!(cfg.alpha, 0.01);
        assert_eq!(cfg.beta, 0.02);
        assert_eq!(cfg.batch, 5);
        assert_eq!(cfg.max_samples, 50);
        assert!(cfg.sequential_test(0.5).is_ok());
        assert!(cfg.sequential_test(0.0).is_err());
    }

    #[test]
    fn validating_builder_accepts_sensible_settings() {
        let cfg = EvalConfig::builder()
            .delta(0.1)
            .alpha(0.01)
            .beta(0.02)
            .batch(5)
            .max_samples(50)
            .build()
            .unwrap();
        let loose = EvalConfig::default()
            .with_delta(0.1)
            .with_error_bounds(0.01, 0.02)
            .with_batch(5)
            .with_max_samples(50);
        assert_eq!(cfg, loose, "builder and struct-literal paths agree");
    }

    #[test]
    fn validating_builder_defaults_match_default() {
        assert_eq!(
            EvalConfig::builder().build().unwrap(),
            EvalConfig::default()
        );
    }

    #[test]
    fn validating_builder_rejects_degenerate_settings() {
        use crate::error::ConfigError;
        let b = EvalConfig::builder;
        assert_eq!(b().alpha(0.0).build(), Err(ConfigError::Alpha(0.0)));
        assert_eq!(b().alpha(1.5).build(), Err(ConfigError::Alpha(1.5)));
        assert_eq!(b().beta(1.0).build(), Err(ConfigError::Beta(1.0)));
        assert_eq!(b().beta(-0.2).build(), Err(ConfigError::Beta(-0.2)));
        assert_eq!(b().delta(0.5).build(), Err(ConfigError::Delta(0.5)));
        assert_eq!(b().delta(0.0).build(), Err(ConfigError::Delta(0.0)));
        assert_eq!(b().batch(0).build(), Err(ConfigError::ZeroBatch));
        assert_eq!(
            b().batch(64).max_samples(10).build(),
            Err(ConfigError::CapBelowBatch {
                max_samples: 10,
                batch: 64
            })
        );
        assert!(b().alpha(f64::NAN).build().is_err(), "NaN alpha rejected");
    }

    #[test]
    fn validating_builder_reports_the_first_problem() {
        // Deterministic validation order: alpha before batch.
        use crate::error::ConfigError;
        assert_eq!(
            EvalConfig::builder().alpha(2.0).batch(0).build(),
            Err(ConfigError::Alpha(2.0))
        );
    }
}

#[cfg(all(test, feature = "legacy-sampler"))]
mod tests {
    // The deprecated `*_with` shims are exercised on purpose: they are the
    // compatibility contract for seeded experiments.
    #![allow(deprecated)]

    use super::*;

    #[test]
    fn session_and_sampler_forms_agree() {
        // A seeded Session::sequential and the Sampler shim with the same
        // seed must make identical decisions (the shim is the same session
        // underneath).
        let b = Uncertain::bernoulli(0.8).unwrap();
        let mut session = Session::sequential(77);
        let mut sampler = Sampler::seeded(77);
        let via_session = b.evaluate_in(&mut session, 0.5);
        let via_sampler = b.evaluate(0.5, &mut sampler, &EvalConfig::default());
        assert_eq!(via_session, via_sampler);
    }

    #[test]
    fn implicit_operator_is_majority_vote() {
        let mut s = Sampler::seeded(1);
        let likely = Uncertain::bernoulli(0.8).unwrap();
        let unlikely = Uncertain::bernoulli(0.2).unwrap();
        assert!(likely.is_probable_with(&mut s));
        assert!(!unlikely.is_probable_with(&mut s));
    }

    #[test]
    fn explicit_operator_demands_stronger_evidence() {
        // Pr = 0.8: passes the 0.5 test but must fail the 0.95 test.
        let mut s = Sampler::seeded(2);
        let b = Uncertain::bernoulli(0.8).unwrap();
        assert!(b.pr_with(0.5, &mut s));
        assert!(!b.pr_with(0.95, &mut s));
    }

    #[test]
    fn evaluate_reports_sample_count_and_estimate() {
        let mut s = Sampler::seeded(3);
        let b = Uncertain::bernoulli(0.9).unwrap();
        let o = b.evaluate(0.5, &mut s, &EvalConfig::default());
        assert!(o.is_true());
        assert!(o.samples >= EvalConfig::default().batch);
        assert!(o.samples <= EvalConfig::default().max_samples);
        assert!(o.estimate > 0.6);
        assert_eq!(o.threshold, 0.5);
    }

    #[test]
    fn marginal_conditional_is_inconclusive() {
        // Evidence exactly at the threshold: the cap should hit.
        let mut s = Sampler::seeded(4);
        let b = Uncertain::bernoulli(0.5).unwrap();
        let not_b = !&b;
        let cfg = EvalConfig::default().with_max_samples(100);
        // Any single run can cross a boundary by luck; the *typical*
        // outcome must be inconclusive — and symmetrically so for the
        // complement (the paper's ternary logic: neither `A < B` nor
        // `A >= B` need hold).
        let mut inconclusive = 0;
        let mut complement_inconclusive = 0;
        for _ in 0..20 {
            let o = b.evaluate(0.5, &mut s, &cfg);
            if o.is_inconclusive() {
                inconclusive += 1;
                assert_eq!(o.samples, 100);
            }
            if not_b.evaluate(0.5, &mut s, &cfg).is_inconclusive() {
                complement_inconclusive += 1;
            }
        }
        assert!(inconclusive >= 10, "inconclusive={inconclusive}/20");
        assert!(
            complement_inconclusive >= 10,
            "complement={complement_inconclusive}/20"
        );
    }

    #[test]
    fn easy_conditionals_stop_early() {
        let mut s = Sampler::seeded(5);
        let b = Uncertain::bernoulli(0.99).unwrap();
        let o = b.evaluate(0.5, &mut s, &EvalConfig::default());
        assert!(o.samples <= 30, "easy test took {} samples", o.samples);
    }

    #[test]
    #[should_panic(expected = "invalid conditional threshold")]
    fn invalid_threshold_panics() {
        let mut s = Sampler::seeded(6);
        let b = Uncertain::bernoulli(0.5).unwrap();
        let _ = b.evaluate(1.5, &mut s, &EvalConfig::default());
    }

    #[test]
    fn probability_estimate_converges() {
        let mut s = Sampler::seeded(7);
        let b = Uncertain::bernoulli(0.3).unwrap();
        let p = b.probability_with(&mut s, 30_000);
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }

    #[test]
    fn conditional_probability_respects_shared_ancestry() {
        // The alarm model of paper Fig. 17, answered without inference
        // machinery: Pr[phone | alarm] where both depend on `earthquake`.
        let earthquake = Uncertain::bernoulli(0.01).unwrap(); // boosted rate for test speed
        let burglary = Uncertain::bernoulli(0.01).unwrap();
        let alarm = &earthquake | &burglary;
        let phone = earthquake.flat_map("phone|eq", |eq| {
            Uncertain::bernoulli(if eq { 0.7 } else { 0.99 }).unwrap()
        });
        let mut s = Sampler::seeded(9);
        let p = phone
            .probability_given(&alarm, &mut s, 60_000)
            .expect("alarm fires often enough at boosted rates");
        // Analytic: Pr[eq|alarm] ≈ 0.01/(0.01+0.99·0.01) ≈ 0.5025 →
        // p ≈ 0.5025·0.7 + 0.4975·0.99 ≈ 0.844.
        assert!((p - 0.844).abs() < 0.03, "p={p}");
    }

    #[test]
    fn impossible_evidence_returns_none() {
        let never = Uncertain::bernoulli(0.0).unwrap();
        let anything = Uncertain::bernoulli(0.5).unwrap();
        let mut s = Sampler::seeded(10);
        assert_eq!(anything.probability_given(&never, &mut s, 1000), None);
    }

    #[test]
    fn speeding_ticket_scenario() {
        // Paper Fig. 4: true speed 57 mph, ε = 4 m over 1 s ⇒ the naive
        // conditional Speed > 60 has a substantial false-positive rate,
        // but demanding 90% evidence suppresses it.
        let mut s = Sampler::seeded(8);
        // Speed error ≈ Gaussian-ish with large σ; model directly.
        let speed = Uncertain::normal(57.0, 6.0).unwrap();
        let over_limit = speed.gt(60.0);
        let naive_fp = over_limit.probability_with(&mut s, 5000);
        assert!(naive_fp > 0.2, "naive false-positive rate = {naive_fp}");
        assert!(!over_limit.pr_with(0.9, &mut s));
    }
}
