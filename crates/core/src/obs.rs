//! Observability hooks: SPRT decision traces and per-node cost profiles.
//!
//! This module (feature `obs`, default-on) defines the *event types* the
//! runtime emits and the [`Recorder`] trait that consumes them; the
//! `uncertain-obs` crate provides ready-made recorders (in-memory trace
//! logs, JSON-lines export) and the metrics registry the serving stack
//! builds on.
//!
//! Two instruments live here:
//!
//! * **Decision traces** — install a [`Recorder`] on a
//!   [`Session`](crate::Session) and every SPRT decision emits one
//!   [`DecisionTrace`]: the batch-by-batch log-likelihood-ratio
//!   trajectory, the Wald boundaries it ran between, samples drawn,
//!   the [`StoppingReason`], and wall time. This is the paper's Fig. 9
//!   claim ("draw only as many samples as each conditional needs") made
//!   observable per decision instead of assertable per benchmark.
//! * **Cost profiles** — [`Evaluator::profiled`](crate::Evaluator::profiled)
//!   compiles a plan whose per-node closures are wrapped with timers;
//!   [`Evaluator::profile`](crate::Evaluator::profile) reports ns and
//!   draw counts per [`NodeId`], aggregated by node kind — a flamegraph
//!   for the Bayesian network.
//!
//! Both instruments are pay-for-use: a session with no recorder installed
//! runs one dormant branch per decision, and a non-profiled plan compiles
//! exactly the closures it always did.

use crate::node::NodeId;
use std::time::Duration;

/// Consumes instrumentation events from a [`Session`](crate::Session).
///
/// Installed with [`Session::install_recorder`](crate::Session::install_recorder);
/// the session calls [`Recorder::record_decision`] once per completed (or
/// aborted) SPRT decision, synchronously, on the deciding thread. Keep
/// implementations cheap — they sit between batches of a hot loop only in
/// the sense that they run after the verdict; a slow recorder stretches
/// the caller's wall time, never the sample stream.
pub trait Recorder: Send {
    /// One SPRT decision ran to a verdict (or was cooperatively aborted).
    fn record_decision(&mut self, trace: DecisionTrace);
}

/// Why an SPRT decision stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoppingReason {
    /// A Wald boundary was crossed: the alternative (`Pr > threshold`)
    /// was accepted.
    Accepted,
    /// A Wald boundary was crossed: the null was accepted.
    Rejected,
    /// The sample cap was reached without crossing a boundary; the
    /// decision fell back to the empirical estimate (outcome flagged
    /// inconclusive).
    BudgetCapped,
    /// The caller's cooperative deadline hook abandoned the decision
    /// before a verdict (service request timeout).
    Aborted,
}

impl StoppingReason {
    /// Stable lower-case name, used by the exporters
    /// (`"accepted"`, `"rejected"`, `"budget_capped"`, `"aborted"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            StoppingReason::Accepted => "accepted",
            StoppingReason::Rejected => "rejected",
            StoppingReason::BudgetCapped => "budget_capped",
            StoppingReason::Aborted => "aborted",
        }
    }
}

/// Which execution backend answered a decision-family query
/// ([`Session::last_dispatch`](crate::Session::last_dispatch)).
///
/// Recording it costs one enum store per decision, so it is always
/// tracked under the `obs` feature; the serve layer turns it into a
/// span attribute when request tracing is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// The analytic backend answered in closed form, zero samples.
    Exact,
    /// The columnar SSA kernel drove the SPRT sample loop.
    Kernel,
    /// The compiled closure plan drove the SPRT sample loop.
    Closure,
}

impl Dispatch {
    /// Stable lower-case name for exporters
    /// (`"exact"`, `"kernel"`, `"closure"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Dispatch::Exact => "exact",
            Dispatch::Kernel => "kernel",
            Dispatch::Closure => "closure",
        }
    }
}

/// One point of a decision's log-likelihood-ratio trajectory: the
/// cumulative state after one SPRT batch was absorbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Cumulative samples drawn after this batch.
    pub samples: usize,
    /// Cumulative `true` observations after this batch.
    pub successes: u64,
    /// Wald log-likelihood ratio at these counts.
    pub llr: f64,
}

/// The full record of one SPRT decision, emitted to a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTrace {
    /// Root node of the decided conditional's network.
    pub root: NodeId,
    /// The threshold of `Pr[cond] > threshold`.
    pub threshold: f64,
    /// Accept-H₁ boundary `ln((1−β)/α)` the trajectory ran against.
    pub upper: f64,
    /// Accept-H₀ boundary `ln(β/(1−α))`.
    pub lower: f64,
    /// The batch-by-batch trajectory, in draw order. Empty iff the
    /// decision was aborted before its first batch.
    pub batches: Vec<TracePoint>,
    /// Total samples drawn (equals the outcome's reported `samples` for
    /// completed decisions; for aborted ones, the samples of completed
    /// batches).
    pub samples: usize,
    /// Total `true` observations.
    pub successes: u64,
    /// Empirical estimate `successes / samples` (`0.0` when no sample
    /// was drawn).
    pub estimate: f64,
    /// Why sampling stopped.
    pub stopping: StoppingReason,
    /// Wall time from test start to verdict/abort.
    pub elapsed: Duration,
}

impl DecisionTrace {
    /// Whether the decision reached a verdict (was not aborted).
    pub fn completed(&self) -> bool {
        self.stopping != StoppingReason::Aborted
    }
}

/// Per-node sampling cost of a profiled evaluator run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCost {
    /// The node.
    pub id: NodeId,
    /// Its display label (`"Gaussian(0, 1)"`, `"+"`, `"gt"`, …).
    pub label: String,
    /// The label's kind prefix — the label up to its first `(` — used to
    /// aggregate nodes of the same operator/distribution family.
    pub kind: String,
    /// Whether the node is a leaf (a sampling function).
    pub is_leaf: bool,
    /// Times the node's closure computed a fresh value (once per joint
    /// sample that reached it).
    pub draws: u64,
    /// Times the closure was re-entered within a joint sample and served
    /// the memoized slot value instead (shared sub-expressions).
    pub hits: u64,
    /// Total wall time inside the node's closure, in nanoseconds.
    /// **Inclusive** of its children's time, like a flamegraph frame.
    pub ns: u64,
}

/// Cost aggregated over every node of one kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindCost {
    /// The kind prefix shared by the aggregated nodes.
    pub kind: String,
    /// How many distinct nodes share it.
    pub nodes: usize,
    /// Summed fresh draws.
    pub draws: u64,
    /// Summed inclusive nanoseconds.
    pub ns: u64,
}

/// A per-node cost profile of a pinned network, from
/// [`Evaluator::profile`](crate::Evaluator::profile).
///
/// Entries are sorted by inclusive time, hottest first. Timings are
/// inclusive (a parent's time contains its children's), so the profile
/// reads like a flamegraph of the Bayesian network: the root carries the
/// whole joint-sample cost and leaves show their own sampling cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Per-node costs, hottest first.
    pub entries: Vec<NodeCost>,
    /// Joint samples the profiled evaluator had drawn when the profile
    /// was taken.
    pub joint_samples: u64,
}

impl Profile {
    /// Inclusive nanoseconds of the hottest node — the root's total in a
    /// fully-planned network, i.e. the whole sampling cost.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.ns).max().unwrap_or(0)
    }

    /// Costs aggregated by node kind, hottest kind first.
    pub fn by_kind(&self) -> Vec<KindCost> {
        let mut kinds: Vec<KindCost> = Vec::new();
        for e in &self.entries {
            match kinds.iter_mut().find(|k| k.kind == e.kind) {
                Some(k) => {
                    k.nodes += 1;
                    k.draws += e.draws;
                    k.ns += e.ns;
                }
                None => kinds.push(KindCost {
                    kind: e.kind.clone(),
                    nodes: 1,
                    draws: e.draws,
                    ns: e.ns,
                }),
            }
        }
        kinds.sort_by_key(|k| std::cmp::Reverse(k.ns));
        kinds
    }

    /// A human-readable table of the top `limit` nodes (all of them for
    /// `limit == 0`).
    pub fn render(&self, limit: usize) -> String {
        let take = if limit == 0 {
            self.entries.len()
        } else {
            limit.min(self.entries.len())
        };
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12} {:>10} {:>8} {:>6}  {}\n",
            "incl ns", "draws", "hits", "leaf", "node"
        ));
        for e in &self.entries[..take] {
            out.push_str(&format!(
                "{:>12} {:>10} {:>8} {:>6}  {}\n",
                e.ns,
                e.draws,
                e.hits,
                if e.is_leaf { "yes" } else { "" },
                e.label
            ));
        }
        out
    }
}

/// Measured cost of one kernel-tape instruction.
///
/// Unlike [`NodeCost`], instruction timings are *exclusive*: the kernel
/// runs each instruction over the whole column before moving on, so every
/// entry is the wall time of that one columnar loop and the entries sum to
/// the batch total.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrCost {
    /// The network node this instruction materialises.
    pub node: NodeId,
    /// The node's display label (e.g. `"Gaussian(0, 1)"`, `"+"`).
    pub label: String,
    /// The instruction mnemonic (e.g. `"fill_leaf"`, `"bin_f64"`).
    pub op: &'static str,
    /// Column elements this instruction produced across the profiled run.
    pub elems: u64,
    /// Exclusive nanoseconds spent in this instruction's columnar loops.
    pub ns: u64,
}

/// A per-instruction cost breakdown of a columnar kernel run, produced by
/// [`Evaluator::kernel_profile`](crate::Evaluator::kernel_profile).
///
/// Instructions appear in tape order (children before parents); `ns` is
/// exclusive per instruction, so the hot spots read directly off the list.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Per-instruction costs in tape (execution) order.
    pub instrs: Vec<InstrCost>,
    /// Joint samples drawn during the profiled run.
    pub samples: u64,
    /// Tape length as lowered, before the optimizer's fold / CSE /
    /// copy-propagation / fusion / DCE passes ran. Compare with
    /// [`KernelProfile::post_opt_instrs`] to see how much of the raw tape
    /// the optimizer removed.
    pub pre_opt_instrs: usize,
}

impl KernelProfile {
    /// Total nanoseconds across all instructions.
    pub fn total_ns(&self) -> u64 {
        self.instrs.iter().map(|i| i.ns).sum()
    }

    /// Tape length after optimization — the instructions that actually
    /// ran (`instrs.len()`).
    pub fn post_opt_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Leaf-fill cost aggregated by distribution kind, hottest first.
    ///
    /// Each entry sums the `FillLeaf` instructions of one distribution
    /// family (label kind prefix, e.g. `"Gaussian"`), split by whether the
    /// leaf filled its column through the vectorized
    /// [`fill_column`](uncertain_dist::Distribution::fill_column) path
    /// (`op == "leaf_vec"`) or the per-element scalar fallback
    /// (`op == "leaf"`). Non-leaf instructions are excluded, so the total
    /// here is the tape's sampling cost as opposed to its arithmetic cost.
    pub fn by_leaf_kind(&self) -> Vec<LeafKindCost> {
        let mut kinds: Vec<LeafKindCost> = Vec::new();
        for i in &self.instrs {
            let vectorized = match i.op {
                "leaf_vec" => true,
                "leaf" => false,
                _ => continue,
            };
            let kind = kind_of(&i.label);
            match kinds
                .iter_mut()
                .find(|k| k.kind == kind && k.vectorized == vectorized)
            {
                Some(k) => {
                    k.instrs += 1;
                    k.elems += i.elems;
                    k.ns += i.ns;
                }
                None => kinds.push(LeafKindCost {
                    kind,
                    vectorized,
                    instrs: 1,
                    elems: i.elems,
                    ns: i.ns,
                }),
            }
        }
        kinds.sort_by_key(|k| std::cmp::Reverse(k.ns));
        kinds
    }
}

/// Leaf sampling cost aggregated over every `FillLeaf` instruction of one
/// distribution kind, from [`KernelProfile::by_leaf_kind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafKindCost {
    /// The distribution family (label kind prefix, e.g. `"Gaussian"`).
    pub kind: String,
    /// Whether these leaves filled whole columns via the distribution's
    /// vectorized `fill_column` (`true`) or fell back to per-element
    /// scalar sampling (`false`). The same kind can appear twice — once
    /// per path — when a network mixes tagged and closure leaves.
    pub vectorized: bool,
    /// Distinct `FillLeaf` instructions aggregated.
    pub instrs: usize,
    /// Summed column elements produced.
    pub elems: u64,
    /// Summed exclusive nanoseconds.
    pub ns: u64,
}

/// The kind prefix of a node label: everything before the first `(`,
/// trimmed (`"Gaussian(0, 1)"` → `"Gaussian"`, `"+"` → `"+"`).
pub(crate) fn kind_of(label: &str) -> String {
    label.split('(').next().unwrap_or(label).trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strips_parameterization() {
        assert_eq!(kind_of("Gaussian(0, 1)"), "Gaussian");
        assert_eq!(kind_of("+"), "+");
        assert_eq!(kind_of("weight_by (k=4)"), "weight_by");
    }

    #[test]
    fn stopping_reason_names_are_stable() {
        assert_eq!(StoppingReason::Accepted.as_str(), "accepted");
        assert_eq!(StoppingReason::Rejected.as_str(), "rejected");
        assert_eq!(StoppingReason::BudgetCapped.as_str(), "budget_capped");
        assert_eq!(StoppingReason::Aborted.as_str(), "aborted");
    }

    #[test]
    fn kernel_profile_totals_are_exclusive_sums() {
        let profile = KernelProfile {
            instrs: vec![
                InstrCost {
                    node: NodeId::fresh(),
                    label: "Gaussian(0, 1)".into(),
                    op: "fill_leaf",
                    elems: 256,
                    ns: 700,
                },
                InstrCost {
                    node: NodeId::fresh(),
                    label: "+".into(),
                    op: "bin_f64",
                    elems: 256,
                    ns: 300,
                },
            ],
            samples: 256,
            pre_opt_instrs: 3,
        };
        assert_eq!(profile.total_ns(), 1000);
        assert_eq!(profile.pre_opt_instrs, 3);
        assert_eq!(profile.post_opt_instrs(), 2);
    }

    #[test]
    fn leaf_breakdown_splits_kind_and_path() {
        let leaf = |label: &str, op: &'static str, ns: u64| InstrCost {
            node: NodeId::fresh(),
            label: label.into(),
            op,
            elems: 100,
            ns,
        };
        let profile = KernelProfile {
            instrs: vec![
                leaf("Gaussian(0, 1)", "leaf_vec", 500),
                leaf("Gaussian(2, 3)", "leaf_vec", 300),
                leaf("Gaussian(sampling fn)", "leaf", 900),
                leaf("Exponential(1)", "leaf_vec", 200),
                leaf("+", "bin_f64", 5_000), // non-leaf: excluded
            ],
            samples: 100,
            pre_opt_instrs: 5,
        };
        let kinds = profile.by_leaf_kind();
        assert_eq!(kinds.len(), 3);
        // Hottest first: the scalar Gaussian outweighs the two vectorized.
        assert_eq!(kinds[0].kind, "Gaussian");
        assert!(!kinds[0].vectorized);
        assert_eq!(kinds[0].ns, 900);
        assert_eq!(kinds[1].kind, "Gaussian");
        assert!(kinds[1].vectorized);
        assert_eq!(
            (kinds[1].instrs, kinds[1].elems, kinds[1].ns),
            (2, 200, 800)
        );
        assert_eq!(kinds[2].kind, "Exponential");
        assert!(kinds[2].vectorized);
    }

    #[test]
    fn profile_aggregates_by_kind() {
        let id = NodeId::fresh();
        let profile = Profile {
            entries: vec![
                NodeCost {
                    id,
                    label: "+".into(),
                    kind: "+".into(),
                    is_leaf: false,
                    draws: 10,
                    hits: 0,
                    ns: 900,
                },
                NodeCost {
                    id: NodeId::fresh(),
                    label: "Gaussian(0, 1)".into(),
                    kind: "Gaussian".into(),
                    is_leaf: true,
                    draws: 10,
                    hits: 0,
                    ns: 500,
                },
                NodeCost {
                    id: NodeId::fresh(),
                    label: "Gaussian(2, 3)".into(),
                    kind: "Gaussian".into(),
                    is_leaf: true,
                    draws: 10,
                    hits: 2,
                    ns: 300,
                },
            ],
            joint_samples: 10,
        };
        let kinds = profile.by_kind();
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].kind, "+");
        assert_eq!(kinds[1].kind, "Gaussian");
        assert_eq!(kinds[1].nodes, 2);
        assert_eq!(kinds[1].draws, 20);
        assert_eq!(kinds[1].ns, 800);
        assert_eq!(profile.total_ns(), 900);
        let table = profile.render(2);
        assert!(table.contains('+') && table.contains("Gaussian(0, 1)"));
        assert!(!table.contains("Gaussian(2, 3)"), "limit respected");
    }
}
