//! Introspection of the Bayesian network behind an `Uncertain<T>`.
//!
//! The paper's runtime "builds Bayesian networks dynamically and then, much
//! like a JIT, compiles those expression trees to executable code at
//! conditionals" (§3). This module exposes the constructed network so
//! programs, tests, and documentation can see exactly what the operators
//! built: node labels, leaf/inner structure, edges, topological order, and
//! Graphviz DOT output (used to render the paper's Figs. 7 and 8).

use crate::node::{NodeId, NodeInfo};
use crate::uncertain::{Uncertain, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Metadata for one node of a captured network view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta {
    /// The node's unique id.
    pub id: NodeId,
    /// Display label (operator symbol or leaf description).
    pub label: String,
    /// Whether the node is a leaf distribution (shaded in the paper's
    /// figures).
    pub is_leaf: bool,
    /// Ids of the nodes this node depends on.
    pub dependencies: Vec<NodeId>,
}

/// A snapshot of the Bayesian network reachable from one root.
///
/// # Examples
///
/// ```
/// use uncertain_core::Uncertain;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fig. 8(b): B = (Y + X) + X shares the node X.
/// let x = Uncertain::normal(0.0, 1.0)?;
/// let y = Uncertain::normal(0.0, 1.0)?;
/// let a = &y + &x;
/// let b = &a + &x;
/// let view = b.network();
/// assert_eq!(view.leaf_count(), 2);  // X and Y, not three leaves
/// assert_eq!(view.node_count(), 4);  // X, Y, +, +
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkView {
    root: NodeId,
    /// Nodes in dependency-first (topological) order.
    nodes: Vec<NodeMeta>,
    index: HashMap<NodeId, usize>,
}

impl NetworkView {
    fn capture(root: &Arc<dyn NodeInfo>) -> Self {
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        let mut visited = HashSet::new();
        // Iterative post-order DFS: dependencies are pushed before the node
        // itself, yielding a topological order of the DAG.
        let mut stack: Vec<(Arc<dyn NodeInfo>, bool)> = vec![(root.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            let id = node.id();
            if visited.contains(&id) {
                continue;
            }
            if expanded {
                visited.insert(id);
                index.insert(id, nodes.len());
                nodes.push(NodeMeta {
                    id,
                    label: node.label(),
                    is_leaf: node.is_leaf(),
                    dependencies: node.children().iter().map(|c| c.id()).collect(),
                });
            } else {
                stack.push((node.clone(), true));
                for child in node.children() {
                    if !visited.contains(&child.id()) {
                        stack.push((child, false));
                    }
                }
            }
        }
        Self {
            root: root.id(),
            nodes,
            index,
        }
    }

    /// The root node's id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of distinct nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf (known-distribution) nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Number of edges (dependency links).
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.dependencies.len()).sum()
    }

    /// Longest path from the root to a leaf (a single node has depth 1).
    pub fn depth(&self) -> usize {
        let mut depth: HashMap<NodeId, usize> = HashMap::new();
        // Nodes are topologically ordered, dependencies first.
        for meta in &self.nodes {
            let d = 1 + meta
                .dependencies
                .iter()
                .filter_map(|c| depth.get(c))
                .copied()
                .max()
                .unwrap_or(0);
            depth.insert(meta.id, d);
        }
        depth.get(&self.root).copied().unwrap_or(0)
    }

    /// Whether the network contains a node with this id.
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// Looks up one node's metadata.
    pub fn node(&self, id: NodeId) -> Option<&NodeMeta> {
        self.index.get(&id).map(|&i| &self.nodes[i])
    }

    /// Iterates over nodes in topological (dependencies-first) order — the
    /// ancestral-sampling order of paper §4.2.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeMeta> {
        self.nodes.iter()
    }

    /// Iterates over `(from, to)` dependency edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes
            .iter()
            .flat_map(|n| n.dependencies.iter().map(move |&d| (n.id, d)))
    }

    /// Renders the network in Graphviz DOT format. Leaves are shaded, as in
    /// the paper's figures.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph bayesian_network {\n  rankdir=BT;\n");
        for n in &self.nodes {
            let style = if n.is_leaf {
                ", style=filled, fillcolor=gray85"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {} [label=\"{}\"{}];\n",
                n.id,
                n.label.replace('"', "'"),
                style
            ));
        }
        for (from, to) in self.edges() {
            out.push_str(&format!("  {to} -> {from};\n"));
        }
        out.push_str("}\n");
        out
    }
}

impl<T: Value> Uncertain<T> {
    /// Captures a structural snapshot of this variable's Bayesian network.
    pub fn network(&self) -> NetworkView {
        let info: Arc<dyn NodeInfo> = self.node().clone();
        NetworkView::capture(&info)
    }

    /// Renders this variable's network in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        self.network().to_dot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_network() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let v = x.network();
        assert_eq!(v.node_count(), 1);
        assert_eq!(v.leaf_count(), 1);
        assert_eq!(v.edge_count(), 0);
        assert_eq!(v.depth(), 1);
        assert_eq!(v.root(), x.id());
        assert!(v.contains(x.id()));
    }

    #[test]
    fn figure_7_shape() {
        // D = A / B; E = C + D — three leaves, two inner nodes.
        let a = Uncertain::normal(0.0, 1.0).unwrap();
        let b = Uncertain::normal(0.0, 1.0).unwrap();
        let c = Uncertain::normal(0.0, 1.0).unwrap();
        let d = &a / &b;
        let e = &c + &d;
        let v = e.network();
        assert_eq!(v.node_count(), 5);
        assert_eq!(v.leaf_count(), 3);
        assert_eq!(v.edge_count(), 4);
        assert_eq!(v.depth(), 3);
    }

    #[test]
    fn figure_8_shared_node_is_single() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::normal(0.0, 1.0).unwrap();
        let a = &y + &x;
        let b = &a + &x;
        let v = b.network();
        // Correct network (Fig. 8b): X, Y, A(+), B(+).
        assert_eq!(v.node_count(), 4);
        assert_eq!(v.leaf_count(), 2);
        // X feeds two + nodes: edges are A→Y, A→X, B→A, B→X.
        assert_eq!(v.edge_count(), 4);
    }

    #[test]
    fn topological_order_has_dependencies_first() {
        let a = Uncertain::normal(0.0, 1.0).unwrap();
        let b = &a + 1.0;
        let c = &b + 1.0;
        let v = c.network();
        let order: Vec<NodeId> = v.nodes().map(|n| n.id).collect();
        for meta in v.nodes() {
            let own_pos = order.iter().position(|&i| i == meta.id).unwrap();
            for dep in &meta.dependencies {
                let dep_pos = order.iter().position(|i| i == dep).unwrap();
                assert!(dep_pos < own_pos, "dependency must precede dependent");
            }
        }
        // Root is last in topological order.
        assert_eq!(*order.last().unwrap(), v.root());
    }

    #[test]
    fn dot_output_shape() {
        let a = Uncertain::normal(0.0, 1.0).unwrap();
        let b = &a + 1.0;
        let dot = b.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("fillcolor=gray85"), "leaves must be shaded");
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn node_lookup_by_id() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let v = x.network();
        let meta = v.node(x.id()).unwrap();
        assert!(meta.is_leaf);
        assert!(meta.label.contains("Gaussian"));
        assert!(v.node(NodeId::fresh()).is_none());
    }
}
