//! Improving estimates with domain knowledge (paper §3.5).
//!
//! Bayes' theorem turns an estimate (the likelihood) plus domain knowledge
//! (the prior) into a sharper posterior. `Uncertain<T>` "unlocks Bayesian
//! statistics by encapsulating entire data distributions":
//!
//! * [`Uncertain::weight_by`] — soft evidence: reweights the variable by a
//!   prior density via sampling–importance–resampling (the GPS
//!   walking-speed prior of §5.1),
//! * [`Uncertain::condition_on`] — hard evidence: rejection sampling
//!   against a predicate (e.g. "the user is on land"),
//! * [`Uncertain::with_prior`] — convenience for a [`Continuous`] prior,
//! * [`Uncertain::encapsulate`] — marks an independence boundary so a
//!   library can hand out fresh readings of a shared error model.

use crate::node::{ConditionedNode, EncapsulatedNode, WeightedNode};
use crate::uncertain::{Uncertain, Value};
use std::sync::Arc;
use uncertain_dist::Continuous;

/// Default number of importance-sampling candidates per joint sample.
const DEFAULT_CANDIDATES: usize = 16;

/// Default rejection budget for [`Uncertain::condition_on`].
const DEFAULT_MAX_TRIES: usize = 10_000;

impl<T: Value> Uncertain<T> {
    /// Wraps this variable behind an independence boundary: every joint
    /// sample of the result re-draws the wrapped sub-network in a fresh
    /// context, so the result is **independent** of other uses of the same
    /// leaves.
    ///
    /// Cloning an `Uncertain` preserves identity (perfect correlation);
    /// `encapsulate` is the opposite tool.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(0.0, 1.0)?;
    /// let correlated = &x - &x;                          // always 0
    /// let independent = x.encapsulate() - x.encapsulate(); // N(0, √2)
    /// let mut s = Session::seeded(0);
    /// assert_eq!(s.sample(&correlated), 0.0);
    /// assert_ne!(s.sample(&independent), 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn encapsulate(&self) -> Uncertain<T> {
        Uncertain::from_node(Arc::new(EncapsulatedNode::new(
            "encapsulate",
            self.node().clone(),
        )))
    }

    /// Reweights this variable by a non-negative weight function — the
    /// sampling–importance–resampling implementation of Bayes' theorem
    /// with `weight` as the (unnormalized) prior density.
    ///
    /// Per joint sample the runtime draws a fixed number of independent
    /// candidates of the underlying network, weighs each, and resamples one
    /// in proportion. Uses a default candidate pool; see
    /// [`Uncertain::weight_by_k`] to tune the accuracy/cost trade-off.
    ///
    /// The result is *encapsulated*: it re-draws its sub-network
    /// independently of other uses of the same leaves (matching how the
    /// paper's libraries apply priors at the data source).
    ///
    /// If the weight of every candidate in a pool is zero (the prior
    /// excludes all of them), the runtime redraws the pool several times
    /// and only then falls back to an unweighted draw rather than
    /// diverging.
    pub fn weight_by(&self, weight: impl Fn(&T) -> f64 + Send + Sync + 'static) -> Uncertain<T> {
        self.weight_by_k(weight, DEFAULT_CANDIDATES)
    }

    /// [`Uncertain::weight_by`] with an explicit candidate-pool size.
    /// Larger pools track the posterior more faithfully at proportionally
    /// higher sampling cost.
    ///
    /// # Panics
    ///
    /// Panics if `candidates == 0`.
    pub fn weight_by_k(
        &self,
        weight: impl Fn(&T) -> f64 + Send + Sync + 'static,
        candidates: usize,
    ) -> Uncertain<T> {
        assert!(candidates > 0, "need at least one importance candidate");
        Uncertain::from_node(Arc::new(WeightedNode::new(
            "weight_by",
            self.node().clone(),
            weight,
            candidates,
        )))
    }

    /// [`Uncertain::weight_by_k`] in *log space*: `ln_weight` returns the
    /// natural log of the (unnormalized) weight, and resampling normalizes
    /// by the pool maximum before exponentiating. Use this when
    /// likelihoods can be astronomically small (e.g. a far-tail Rician GPS
    /// likelihood) and raw densities would underflow to zero.
    ///
    /// `ln_weight` may return `-∞` (or any non-finite value) to exclude a
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics if `candidates == 0`.
    pub fn weight_by_ln_k(
        &self,
        ln_weight: impl Fn(&T) -> f64 + Send + Sync + 'static,
        candidates: usize,
    ) -> Uncertain<T> {
        assert!(candidates > 0, "need at least one importance candidate");
        Uncertain::from_node(Arc::new(WeightedNode::new_log_space(
            "weight_by_ln",
            self.node().clone(),
            ln_weight,
            candidates,
        )))
    }

    /// Conditions this variable on hard evidence by rejection sampling:
    /// each joint sample re-draws the sub-network until `predicate` holds.
    ///
    /// `max_tries` bounds the rejection loop (use
    /// [`Uncertain::condition_on_default`] for the default budget).
    ///
    /// # Panics
    ///
    /// Panics *at sampling time* if `max_tries` consecutive draws are
    /// rejected — the evidence is (nearly) impossible under the
    /// distribution, which mirrors the divergence of rejection-based
    /// inference on low-probability observations (paper §6's Church
    /// example).
    pub fn condition_on(
        &self,
        predicate: impl Fn(&T) -> bool + Send + Sync + 'static,
        max_tries: usize,
    ) -> Uncertain<T> {
        assert!(max_tries > 0, "need at least one rejection try");
        Uncertain::from_node(Arc::new(ConditionedNode::new(
            "condition",
            self.node().clone(),
            predicate,
            max_tries,
        )))
    }

    /// [`Uncertain::condition_on`] with the default rejection budget.
    pub fn condition_on_default(
        &self,
        predicate: impl Fn(&T) -> bool + Send + Sync + 'static,
    ) -> Uncertain<T> {
        self.condition_on(predicate, DEFAULT_MAX_TRIES)
    }
}

impl Uncertain<f64> {
    /// Applies a [`Continuous`] prior distribution to this variable — the
    /// paper's "constraint abstraction" for domain knowledge (§3.5):
    /// `posterior ∝ likelihood × prior`.
    ///
    /// # Examples
    ///
    /// Removing absurd walking speeds with a prior (paper §5.1):
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    /// use uncertain_core::dist::{Gaussian, Truncated};
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // A wildly uncertain speed estimate…
    /// let speed = Uncertain::normal(10.0, 15.0)?;
    /// // …and the knowledge that humans walk at ~3 mph.
    /// let walking = Truncated::new(Arc::new(Gaussian::new(3.0, 1.5)?), 0.0, 8.0)?;
    /// let improved = speed.with_prior(walking);
    ///
    /// let mut s = Session::seeded(0);
    /// let e = improved.expected_value_in(&mut s, 2000);
    /// assert!(e > 0.0 && e < 8.0, "absurd speeds removed, e={e}");
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_prior(&self, prior: impl Continuous + 'static) -> Uncertain<f64> {
        self.weight_by(move |x| prior.pdf(*x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use uncertain_dist::Gaussian;

    #[test]
    fn weight_by_shifts_toward_prior() {
        // Likelihood N(0, 3), prior N(6, 1): posterior mean must move
        // decisively toward 6.
        let x = Uncertain::normal(0.0, 3.0).unwrap();
        let prior = Gaussian::new(6.0, 1.0).unwrap();
        let posterior = x.with_prior(prior);
        let mut s = Session::sequential(1);
        let e = posterior.expected_value_in(&mut s, 4000);
        assert!(e > 3.0, "posterior mean {e} should shift toward the prior");
    }

    #[test]
    fn weight_by_narrows_spread() {
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let prior = Gaussian::new(0.0, 1.0).unwrap();
        let posterior = x.with_prior(prior);
        let mut s = Session::sequential(2);
        let wide = x.stats_in(&mut s, 4000).unwrap().std_dev();
        let narrow = posterior.stats_in(&mut s, 4000).unwrap().std_dev();
        assert!(
            narrow < wide / 2.0,
            "prior should sharpen: {narrow} vs {wide}"
        );
    }

    #[test]
    fn more_candidates_track_posterior_better() {
        // Analytic posterior of N(0,1) likelihood × N(4,1) prior is
        // N(2, 1/√2). With more candidates the mean gets closer to 2.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let prior = Gaussian::new(4.0, 1.0).unwrap();
        let rough = x.weight_by_k(move |v| prior.pdf(*v), 2);
        let prior2 = Gaussian::new(4.0, 1.0).unwrap();
        let fine = x.weight_by_k(move |v| prior2.pdf(*v), 64);
        let mut s = Session::sequential(3);
        let e_rough = rough.expected_value_in(&mut s, 3000);
        let e_fine = fine.expected_value_in(&mut s, 3000);
        assert!(
            (e_fine - 2.0).abs() < (e_rough - 2.0).abs(),
            "fine={e_fine} rough={e_rough}"
        );
        assert!((e_fine - 2.0).abs() < 0.2, "fine={e_fine}");
    }

    #[test]
    fn log_space_weighting_survives_underflow() {
        // Log-likelihoods around −10⁶: raw densities are exactly 0.0 in
        // f64, but relative log weights still steer the posterior.
        let x = Uncertain::uniform(0.0, 10.0).unwrap();
        let posterior = x.weight_by_ln_k(|v| -1.0e6 - (v - 7.0) * (v - 7.0) * 50.0, 32);
        let mut s = Session::sequential(6);
        let e = posterior.expected_value_in(&mut s, 2000);
        assert!((e - 7.0).abs() < 0.3, "e={e}");
    }

    #[test]
    fn log_space_all_neg_infinity_falls_back() {
        let x = Uncertain::uniform(0.0, 1.0).unwrap();
        let w = x.weight_by_ln_k(|_| f64::NEG_INFINITY, 4);
        let mut s = Session::sequential(7);
        // Must not panic; falls back to an unweighted draw.
        let v = s.sample(&w);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn log_and_linear_weighting_agree_when_both_representable() {
        let x = Uncertain::normal(0.0, 3.0).unwrap();
        let linear = x.weight_by_k(|v| (-0.5 * (v - 2.0) * (v - 2.0)).exp(), 32);
        let logged = x.weight_by_ln_k(|v| -0.5 * (v - 2.0) * (v - 2.0), 32);
        let mut s = Session::sequential(8);
        let e_lin = linear.expected_value_in(&mut s, 4000);
        let e_log = logged.expected_value_in(&mut s, 4000);
        assert!((e_lin - e_log).abs() < 0.15, "{e_lin} vs {e_log}");
    }

    #[test]
    fn condition_on_restricts_support() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let positive = x.condition_on_default(|v| *v > 0.0);
        let mut s = Session::sequential(4);
        for _ in 0..500 {
            assert!(s.sample(&positive) > 0.0);
        }
        // Mean of the half-normal is √(2/π) ≈ 0.798.
        let e = positive.expected_value_in(&mut s, 5000);
        assert!((e - 0.798).abs() < 0.05, "e={e}");
    }

    #[test]
    fn encapsulate_breaks_correlation_but_keeps_distribution() {
        let x = Uncertain::normal(5.0, 2.0).unwrap();
        let fresh = x.encapsulate();
        let mut s = Session::sequential(5);
        let st = fresh.stats_in(&mut s, 10_000).unwrap();
        assert!((st.mean() - 5.0).abs() < 0.1);
        assert!((st.std_dev() - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one importance candidate")]
    fn zero_candidates_panics() {
        let x = Uncertain::point(1.0);
        let _ = x.weight_by_k(|_| 1.0, 0);
    }
}
