//! Wire encoding of tape-expressible `Uncertain` graphs.
//!
//! A remote client cannot ship closures, so the network protocol carries
//! the *recipe* for a query graph instead: the closed-form distribution
//! behind each leaf (its [`DistSpec`]), point masses over `f64`/`bool`,
//! and the kernel tags of lifted operators. The server rebuilds the graph
//! through the same public constructors and operators the client used, so
//! the reconstruction draws **bitwise identical** sample streams — the
//! tags are already the contract the columnar kernel relies on for
//! closure/tape equivalence, and RNG draw order depends only on graph
//! structure, never on `NodeId` values.
//!
//! The same "tape-expressible" subset the kernel lowers is what the wire
//! can express. Graphs containing opaque closures (`from_fn`), monadic
//! binds, encapsulation, priors, or conditioning fail to encode with
//! [`WireError::Unsupported`]; remote callers keep those workloads
//! in-process.
//!
//! # Format
//!
//! Little-endian throughout:
//!
//! ```text
//! [version u8 = 1][root_type u8: 0 = f64, 1 = bool][node_count u32]
//! node := opcode u8, then:
//!   1  leaf       [shape u8][params f64 × arity]
//!   2  point f64  [value f64]
//!   3  point bool [value u8: 0|1]
//!   4  unary f64  [un u8][payload…][child u32]
//!   5  not bool   [child u32]
//!   6  binary f64 [bin u8][left u32][right u32]
//!   7  compare    [cmp u8][left u32][right u32]
//!   8  logic      [bool u8][left u32][right u32]
//! ```
//!
//! Nodes appear in topological (post-)order; children reference earlier
//! indices only, and the last node is the root. Shared sub-expressions are
//! emitted once and referenced by index, so the decoder's `Arc` sharing —
//! and with it the paper's perfect correlation of shared variables —
//! survives the round trip.

use crate::error::WireError;
use crate::kernel::{BinOp, BoolOp, CmpOp, Map2Tag, MapTag, UnOp};
use crate::node::{NodeId, NodeInfo};
use crate::uncertain::Uncertain;
use std::collections::HashMap;
use std::sync::Arc;
use uncertain_dist::{Bernoulli, Beta, DistSpec, Exponential, Gaussian, Rayleigh, Uniform};

/// What a node means on the wire — the serializable summary each node
/// kind advertises through `NodeInfo::wire_op`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WireOp {
    /// A leaf with a closed-form distribution.
    Leaf(DistSpec),
    /// A point mass over `f64`.
    PointF64(f64),
    /// A point mass over `bool`.
    PointBool(bool),
    /// A tagged unary lift.
    Map(MapTag),
    /// A tagged binary lift.
    Map2(Map2Tag),
}

/// One decoded/encodable node with children resolved to indices.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WireNode {
    Leaf(DistSpec),
    PointF64(f64),
    PointBool(bool),
    Map(MapTag, u32),
    Map2(Map2Tag, u32, u32),
}

impl WireNode {
    /// Whether this node produces `bool` columns (vs `f64`).
    fn is_bool(&self) -> bool {
        match self {
            WireNode::Leaf(DistSpec::Bernoulli { .. }) => true,
            WireNode::Leaf(_) | WireNode::PointF64(_) => false,
            WireNode::PointBool(_) => true,
            WireNode::Map(MapTag::NotBool, _) => true,
            WireNode::Map(MapTag::F64(_), _) => false,
            WireNode::Map2(Map2Tag::Cmp(_) | Map2Tag::Bool(_), _, _) => true,
            WireNode::Map2(Map2Tag::F64(_), _, _) => false,
        }
    }
}

/// A serialized, tape-expressible `Uncertain` graph.
///
/// Produced from a live graph by [`WireGraph::from_f64`] /
/// [`WireGraph::from_bool`], shipped as bytes via [`WireGraph::to_bytes`],
/// and rebuilt on the far side with [`WireGraph::from_bytes`] +
/// [`WireGraph::decode_f64`] / [`WireGraph::decode_bool`].
///
/// # Examples
///
/// ```
/// use uncertain_core::{Session, Uncertain, WireGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let speed = Uncertain::normal(4.0, 1.0)?;
/// let query = speed.gt(3.0);
///
/// let bytes = WireGraph::from_bool(&query)?.to_bytes();
/// let rebuilt = WireGraph::from_bytes(&bytes)?.decode_bool()?;
///
/// // Same seed, same structure: bitwise-identical sample streams.
/// let (mut a, mut b) = (Session::seeded(7), Session::seeded(7));
/// for _ in 0..64 {
///     assert_eq!(a.sample(&query), b.sample(&rebuilt));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WireGraph {
    nodes: Vec<WireNode>,
    root_is_bool: bool,
}

const WIRE_VERSION: u8 = 1;

impl WireGraph {
    /// Encodes an `f64`-valued graph.
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] when the graph contains a node the wire
    /// format cannot express (opaque leaf, bind, encapsulation, prior,
    /// conditioning, untagged operator).
    pub fn from_f64(u: &Uncertain<f64>) -> Result<Self, WireError> {
        Self::encode_root(&(u.node().clone() as Arc<dyn NodeInfo>), false)
    }

    /// Encodes a `bool`-valued graph (the shape of every conditional).
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] as for [`WireGraph::from_f64`].
    pub fn from_bool(u: &Uncertain<bool>) -> Result<Self, WireError> {
        Self::encode_root(&(u.node().clone() as Arc<dyn NodeInfo>), true)
    }

    fn encode_root(root: &Arc<dyn NodeInfo>, root_is_bool: bool) -> Result<Self, WireError> {
        let mut nodes: Vec<WireNode> = Vec::new();
        let mut index: HashMap<NodeId, u32> = HashMap::new();
        // Iterative post-order DFS (same walk as `NetworkView::capture`):
        // children are emitted before their parent, shared nodes once.
        let mut stack: Vec<(Arc<dyn NodeInfo>, bool)> = vec![(root.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            let id = node.id();
            if index.contains_key(&id) {
                continue;
            }
            if expanded {
                let op = node
                    .wire_op()
                    .ok_or_else(|| WireError::Unsupported(node.label()))?;
                let kids: Vec<u32> = node.children().iter().map(|c| index[&c.id()]).collect();
                let wn = match op {
                    WireOp::Leaf(s) => WireNode::Leaf(s),
                    WireOp::PointF64(x) => WireNode::PointF64(x),
                    WireOp::PointBool(b) => WireNode::PointBool(b),
                    WireOp::Map(t) => WireNode::Map(t, kids[0]),
                    WireOp::Map2(t) => WireNode::Map2(t, kids[0], kids[1]),
                };
                index.insert(id, nodes.len() as u32);
                nodes.push(wn);
            } else {
                stack.push((node.clone(), true));
                for child in node.children() {
                    if !index.contains_key(&child.id()) {
                        stack.push((child, false));
                    }
                }
            }
        }
        debug_assert_eq!(
            nodes.last().map(WireNode::is_bool),
            Some(root_is_bool),
            "root value type must match the encoding entry point"
        );
        Ok(Self {
            nodes,
            root_is_bool,
        })
    }

    /// Whether the root (last) node produces `bool` — i.e. whether
    /// [`WireGraph::decode_bool`] is the right decoder.
    pub fn root_is_bool(&self) -> bool {
        self.root_is_bool
    }

    /// Number of distinct nodes in the encoded graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // -- bytes ---------------------------------------------------------

    /// Serializes the graph to its byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.nodes.len() * 12);
        out.push(WIRE_VERSION);
        out.push(u8::from(self.root_is_bool));
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for node in &self.nodes {
            match *node {
                WireNode::Leaf(spec) => {
                    out.push(1);
                    put_spec(&mut out, spec);
                }
                WireNode::PointF64(x) => {
                    out.push(2);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                WireNode::PointBool(b) => {
                    out.push(3);
                    out.push(u8::from(b));
                }
                WireNode::Map(MapTag::F64(un), child) => {
                    out.push(4);
                    put_un(&mut out, un);
                    out.extend_from_slice(&child.to_le_bytes());
                }
                WireNode::Map(MapTag::NotBool, child) => {
                    out.push(5);
                    out.extend_from_slice(&child.to_le_bytes());
                }
                WireNode::Map2(tag, l, r) => {
                    let (op, code) = match tag {
                        Map2Tag::F64(b) => (6, bin_code(b)),
                        Map2Tag::Cmp(c) => (7, cmp_code(c)),
                        Map2Tag::Bool(b) => (8, bool_code(b)),
                    };
                    out.push(op);
                    out.push(code);
                    out.extend_from_slice(&l.to_le_bytes());
                    out.extend_from_slice(&r.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a graph from bytes, validating structure as it goes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the bytes end mid-structure;
    /// [`WireError::Malformed`] for unknown opcodes, out-of-range child
    /// references, or an empty graph.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::Malformed(format!(
                "unknown wire graph version {version}"
            )));
        }
        let root_is_bool = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(WireError::Malformed(format!("unknown root type {t}"))),
        };
        let count = r.u32()? as usize;
        if count == 0 {
            return Err(WireError::Malformed("empty graph".into()));
        }
        // Each node occupies at least 2 bytes, so an honest count can
        // never exceed the remaining payload — reject absurd headers
        // before reserving memory for them.
        if count > bytes.len() {
            return Err(WireError::Malformed(format!(
                "node count {count} exceeds payload size"
            )));
        }
        let mut nodes = Vec::with_capacity(count);
        for i in 0..count {
            let child = |idx: u32| -> Result<u32, WireError> {
                if (idx as usize) < i {
                    Ok(idx)
                } else {
                    Err(WireError::Malformed(format!(
                        "node {i} references child {idx}, which is not an earlier node"
                    )))
                }
            };
            let node = match r.u8()? {
                1 => WireNode::Leaf(read_spec(&mut r)?),
                2 => WireNode::PointF64(r.f64()?),
                3 => WireNode::PointBool(match r.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(WireError::Malformed(format!("bad bool literal {b}")));
                    }
                }),
                4 => {
                    let un = read_un(&mut r)?;
                    WireNode::Map(MapTag::F64(un), child(r.u32()?)?)
                }
                5 => WireNode::Map(MapTag::NotBool, child(r.u32()?)?),
                6 => {
                    let b = read_bin(&mut r)?;
                    WireNode::Map2(Map2Tag::F64(b), child(r.u32()?)?, child(r.u32()?)?)
                }
                7 => {
                    let c = read_cmp(&mut r)?;
                    WireNode::Map2(Map2Tag::Cmp(c), child(r.u32()?)?, child(r.u32()?)?)
                }
                8 => {
                    let b = read_bool_op(&mut r)?;
                    WireNode::Map2(Map2Tag::Bool(b), child(r.u32()?)?, child(r.u32()?)?)
                }
                op => return Err(WireError::Malformed(format!("unknown node opcode {op}"))),
            };
            nodes.push(node);
        }
        let graph = Self {
            nodes,
            root_is_bool,
        };
        if graph.nodes.last().map(WireNode::is_bool) != Some(root_is_bool) {
            return Err(WireError::Malformed(
                "root type header disagrees with the root node".into(),
            ));
        }
        Ok(graph)
    }

    // -- decode --------------------------------------------------------

    /// Rebuilds the graph as a live `Uncertain<f64>`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the root is `bool`-valued, a node's
    /// child has the wrong value type, or a distribution's parameters are
    /// rejected by its public constructor.
    pub fn decode_f64(&self) -> Result<Uncertain<f64>, WireError> {
        match self.build()? {
            Slot::F(u) => Ok(u),
            Slot::B(_) => Err(WireError::Malformed(
                "graph root is bool-valued, not f64".into(),
            )),
        }
    }

    /// Rebuilds the graph as a live `Uncertain<bool>`.
    ///
    /// # Errors
    ///
    /// As for [`WireGraph::decode_f64`], with the type check reversed.
    pub fn decode_bool(&self) -> Result<Uncertain<bool>, WireError> {
        match self.build()? {
            Slot::B(u) => Ok(u),
            Slot::F(_) => Err(WireError::Malformed(
                "graph root is f64-valued, not bool".into(),
            )),
        }
    }

    fn build(&self) -> Result<Slot, WireError> {
        if self.nodes.is_empty() {
            return Err(WireError::Malformed("empty graph".into()));
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let f = |idx: u32| -> Result<&Uncertain<f64>, WireError> {
                match slots.get(idx as usize) {
                    Some(Slot::F(u)) => Ok(u),
                    Some(Slot::B(_)) => Err(WireError::Malformed(format!(
                        "node {i} expects an f64 child, node {idx} is bool"
                    ))),
                    None => Err(WireError::Malformed(format!(
                        "node {i} references missing child {idx}"
                    ))),
                }
            };
            let b = |idx: u32| -> Result<&Uncertain<bool>, WireError> {
                match slots.get(idx as usize) {
                    Some(Slot::B(u)) => Ok(u),
                    Some(Slot::F(_)) => Err(WireError::Malformed(format!(
                        "node {i} expects a bool child, node {idx} is f64"
                    ))),
                    None => Err(WireError::Malformed(format!(
                        "node {i} references missing child {idx}"
                    ))),
                }
            };
            let slot = match *node {
                WireNode::Leaf(spec) => build_leaf(spec)?,
                WireNode::PointF64(x) => Slot::F(Uncertain::point(x)),
                WireNode::PointBool(v) => Slot::B(Uncertain::point(v)),
                WireNode::Map(MapTag::F64(un), c) => Slot::F(apply_un(un, f(c)?)?),
                WireNode::Map(MapTag::NotBool, c) => {
                    let child = b(c)?;
                    Slot::B(!child)
                }
                WireNode::Map2(Map2Tag::F64(op), l, r) => Slot::F(apply_bin(op, f(l)?, f(r)?)),
                WireNode::Map2(Map2Tag::Cmp(op), l, r) => Slot::B(apply_cmp(op, f(l)?, f(r)?)),
                WireNode::Map2(Map2Tag::Bool(op), l, r) => Slot::B(apply_bool(op, b(l)?, b(r)?)),
            };
            slots.push(slot);
        }
        Ok(slots.pop().expect("graph is non-empty"))
    }
}

/// A decoded node: the two value types the wire format carries.
enum Slot {
    F(Uncertain<f64>),
    B(Uncertain<bool>),
}

fn build_leaf(spec: DistSpec) -> Result<Slot, WireError> {
    let bad = |e: uncertain_dist::ParamError| WireError::Malformed(e.to_string());
    Ok(match spec {
        DistSpec::Gaussian { mean, std_dev } => Slot::F(Uncertain::from_distribution(
            Gaussian::new(mean, std_dev).map_err(bad)?,
        )),
        DistSpec::Uniform { low, high } => Slot::F(Uncertain::from_distribution(
            Uniform::new(low, high).map_err(bad)?,
        )),
        DistSpec::Rayleigh { scale } => Slot::F(Uncertain::from_distribution(
            Rayleigh::new(scale).map_err(bad)?,
        )),
        DistSpec::Exponential { rate } => Slot::F(Uncertain::from_distribution(
            Exponential::new(rate).map_err(bad)?,
        )),
        DistSpec::Bernoulli { p } => Slot::B(Uncertain::from_distribution(
            Bernoulli::new(p).map_err(bad)?,
        )),
        DistSpec::Beta { alpha, beta } => Slot::F(Uncertain::from_distribution(
            Beta::new(alpha, beta).map_err(bad)?,
        )),
        // `DistSpec` is non-exhaustive: a newer peer may know shapes this
        // build does not.
        #[allow(unreachable_patterns)]
        other => {
            return Err(WireError::Unsupported(format!("{other:?}")));
        }
    })
}

/// Rebuilds a tagged unary lift through the *public* operator that
/// produces that tag, so the reconstruction is closure-for-closure
/// identical to what the encoding client built.
fn apply_un(op: UnOp, x: &Uncertain<f64>) -> Result<Uncertain<f64>, WireError> {
    Ok(match op {
        UnOp::Neg => -x,
        UnOp::Abs => x.abs(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Exp => x.exp(),
        UnOp::Ln => x.ln(),
        UnOp::Sin => x.sin(),
        UnOp::Cos => x.cos(),
        UnOp::Asin => x.asin(),
        UnOp::Atan => x.atan(),
        UnOp::ToRadians => x.to_radians(),
        UnOp::ToDegrees => x.to_degrees(),
        UnOp::AddK(k) => x + k,
        UnOp::SubK(k) => x - k,
        UnOp::RsubK(k) => k - x,
        UnOp::MulK(k) => x * k,
        UnOp::DivK(k) => x / k,
        UnOp::RdivK(k) => k / x,
        UnOp::RemK(k) => x % k,
        UnOp::RremK(k) => k % x,
        UnOp::PowiK(n) => x.powi(n),
        UnOp::PowfK(p) => x.powf(p),
        UnOp::ClampK(lo, hi) => {
            // `f64::clamp` panics on an inverted or NaN range — reject it
            // here so hostile bytes cannot panic a serving shard later.
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(WireError::Malformed(format!(
                    "clamp range [{lo}, {hi}] is inverted or NaN"
                )));
            }
            x.clamp(lo, hi)
        }
    })
}

fn apply_bin(op: BinOp, a: &Uncertain<f64>, b: &Uncertain<f64>) -> Uncertain<f64> {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        BinOp::Max => a.max_u(b),
        BinOp::Min => a.min_u(b),
        BinOp::Atan2 => a.atan2(b),
    }
}

fn apply_cmp(op: CmpOp, a: &Uncertain<f64>, b: &Uncertain<f64>) -> Uncertain<bool> {
    match op {
        CmpOp::Gt => a.gt(b),
        CmpOp::Lt => a.lt(b),
        CmpOp::Ge => a.ge(b),
        CmpOp::Le => a.le(b),
        CmpOp::Eq => a.eq_exact(b),
        CmpOp::Ne => a.ne_exact(b),
    }
}

fn apply_bool(op: BoolOp, a: &Uncertain<bool>, b: &Uncertain<bool>) -> Uncertain<bool> {
    match op {
        BoolOp::And => a & b,
        BoolOp::Or => a | b,
        BoolOp::Xor => a ^ b,
    }
}

// -- scalar codecs ------------------------------------------------------

fn put_spec(out: &mut Vec<u8>, spec: DistSpec) {
    match spec {
        DistSpec::Gaussian { mean, std_dev } => {
            out.push(1);
            out.extend_from_slice(&mean.to_le_bytes());
            out.extend_from_slice(&std_dev.to_le_bytes());
        }
        DistSpec::Uniform { low, high } => {
            out.push(2);
            out.extend_from_slice(&low.to_le_bytes());
            out.extend_from_slice(&high.to_le_bytes());
        }
        DistSpec::Rayleigh { scale } => {
            out.push(3);
            out.extend_from_slice(&scale.to_le_bytes());
        }
        DistSpec::Exponential { rate } => {
            out.push(4);
            out.extend_from_slice(&rate.to_le_bytes());
        }
        DistSpec::Bernoulli { p } => {
            out.push(5);
            out.extend_from_slice(&p.to_le_bytes());
        }
        DistSpec::Beta { alpha, beta } => {
            out.push(6);
            out.extend_from_slice(&alpha.to_le_bytes());
            out.extend_from_slice(&beta.to_le_bytes());
        }
        // Encoding of a shape this build does not know is unreachable:
        // specs only originate from this build's distributions.
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable DistSpec {other:?}"),
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<DistSpec, WireError> {
    Ok(match r.u8()? {
        1 => DistSpec::Gaussian {
            mean: r.f64()?,
            std_dev: r.f64()?,
        },
        2 => DistSpec::Uniform {
            low: r.f64()?,
            high: r.f64()?,
        },
        3 => DistSpec::Rayleigh { scale: r.f64()? },
        4 => DistSpec::Exponential { rate: r.f64()? },
        5 => DistSpec::Bernoulli { p: r.f64()? },
        6 => DistSpec::Beta {
            alpha: r.f64()?,
            beta: r.f64()?,
        },
        code => {
            return Err(WireError::Malformed(format!(
                "unknown distribution shape {code}"
            )));
        }
    })
}

fn put_un(out: &mut Vec<u8>, op: UnOp) {
    let (code, payload): (u8, &[f64]) = match op {
        UnOp::Neg => (1, &[]),
        UnOp::Abs => (2, &[]),
        UnOp::Sqrt => (3, &[]),
        UnOp::Exp => (4, &[]),
        UnOp::Ln => (5, &[]),
        UnOp::Sin => (6, &[]),
        UnOp::Cos => (7, &[]),
        UnOp::Asin => (8, &[]),
        UnOp::Atan => (9, &[]),
        UnOp::ToRadians => (10, &[]),
        UnOp::ToDegrees => (11, &[]),
        UnOp::AddK(k) => (12, &[k]),
        UnOp::SubK(k) => (13, &[k]),
        UnOp::RsubK(k) => (14, &[k]),
        UnOp::MulK(k) => (15, &[k]),
        UnOp::DivK(k) => (16, &[k]),
        UnOp::RdivK(k) => (17, &[k]),
        UnOp::RemK(k) => (18, &[k]),
        UnOp::RremK(k) => (19, &[k]),
        UnOp::PowiK(n) => {
            out.push(20);
            out.extend_from_slice(&n.to_le_bytes());
            return;
        }
        UnOp::PowfK(p) => (21, &[p]),
        UnOp::ClampK(lo, hi) => (22, &[lo, hi]),
    };
    out.push(code);
    for k in payload {
        out.extend_from_slice(&k.to_le_bytes());
    }
}

fn read_un(r: &mut Reader<'_>) -> Result<UnOp, WireError> {
    Ok(match r.u8()? {
        1 => UnOp::Neg,
        2 => UnOp::Abs,
        3 => UnOp::Sqrt,
        4 => UnOp::Exp,
        5 => UnOp::Ln,
        6 => UnOp::Sin,
        7 => UnOp::Cos,
        8 => UnOp::Asin,
        9 => UnOp::Atan,
        10 => UnOp::ToRadians,
        11 => UnOp::ToDegrees,
        12 => UnOp::AddK(r.f64()?),
        13 => UnOp::SubK(r.f64()?),
        14 => UnOp::RsubK(r.f64()?),
        15 => UnOp::MulK(r.f64()?),
        16 => UnOp::DivK(r.f64()?),
        17 => UnOp::RdivK(r.f64()?),
        18 => UnOp::RemK(r.f64()?),
        19 => UnOp::RremK(r.f64()?),
        20 => UnOp::PowiK(r.i32()?),
        21 => UnOp::PowfK(r.f64()?),
        22 => UnOp::ClampK(r.f64()?, r.f64()?),
        code => {
            return Err(WireError::Malformed(format!("unknown unary op {code}")));
        }
    })
}

fn bin_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 1,
        BinOp::Sub => 2,
        BinOp::Mul => 3,
        BinOp::Div => 4,
        BinOp::Rem => 5,
        BinOp::Max => 6,
        BinOp::Min => 7,
        BinOp::Atan2 => 8,
    }
}

fn read_bin(r: &mut Reader<'_>) -> Result<BinOp, WireError> {
    Ok(match r.u8()? {
        1 => BinOp::Add,
        2 => BinOp::Sub,
        3 => BinOp::Mul,
        4 => BinOp::Div,
        5 => BinOp::Rem,
        6 => BinOp::Max,
        7 => BinOp::Min,
        8 => BinOp::Atan2,
        code => {
            return Err(WireError::Malformed(format!("unknown binary op {code}")));
        }
    })
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Gt => 1,
        CmpOp::Lt => 2,
        CmpOp::Ge => 3,
        CmpOp::Le => 4,
        CmpOp::Eq => 5,
        CmpOp::Ne => 6,
    }
}

fn read_cmp(r: &mut Reader<'_>) -> Result<CmpOp, WireError> {
    Ok(match r.u8()? {
        1 => CmpOp::Gt,
        2 => CmpOp::Lt,
        3 => CmpOp::Ge,
        4 => CmpOp::Le,
        5 => CmpOp::Eq,
        6 => CmpOp::Ne,
        code => {
            return Err(WireError::Malformed(format!("unknown comparison {code}")));
        }
    })
}

fn bool_code(op: BoolOp) -> u8 {
    match op {
        BoolOp::And => 1,
        BoolOp::Or => 2,
        BoolOp::Xor => 3,
    }
}

fn read_bool_op(r: &mut Reader<'_>) -> Result<BoolOp, WireError> {
    Ok(match r.u8()? {
        1 => BoolOp::And,
        2 => BoolOp::Or,
        3 => BoolOp::Xor,
        code => {
            return Err(WireError::Malformed(format!("unknown connective {code}")));
        }
    })
}

/// A bounds-checked little-endian cursor over wire bytes.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Session;

    fn samples_f64(u: &Uncertain<f64>, seed: u64, n: usize) -> Vec<u64> {
        let mut s = Session::seeded(seed);
        (0..n).map(|_| s.sample(u).to_bits()).collect()
    }

    fn samples_bool(u: &Uncertain<bool>, seed: u64, n: usize) -> Vec<bool> {
        let mut s = Session::seeded(seed);
        (0..n).map(|_| s.sample(u)).collect()
    }

    fn roundtrip_f64(u: &Uncertain<f64>) -> Uncertain<f64> {
        let bytes = WireGraph::from_f64(u).unwrap().to_bytes();
        WireGraph::from_bytes(&bytes).unwrap().decode_f64().unwrap()
    }

    fn roundtrip_bool(u: &Uncertain<bool>) -> Uncertain<bool> {
        let bytes = WireGraph::from_bool(u).unwrap().to_bytes();
        WireGraph::from_bytes(&bytes)
            .unwrap()
            .decode_bool()
            .unwrap()
    }

    #[test]
    fn gps_query_roundtrips_bitwise() {
        // The paper's Fig. 9 shape: speed from two noisy fixes, thresholded.
        let fix_err = Uncertain::rayleigh(4.0).unwrap();
        let speed = (&fix_err + &Uncertain::rayleigh(3.0).unwrap()) / 5.0;
        let query = speed.gt(1.2);
        let rebuilt = roundtrip_bool(&query);
        assert_eq!(
            samples_bool(&query, 42, 256),
            samples_bool(&rebuilt, 42, 256)
        );
    }

    #[test]
    fn shared_subexpressions_stay_correlated() {
        // x - x == 0 exactly, iff the decoder preserves sharing.
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let diff = &x - &x;
        let rebuilt = roundtrip_f64(&diff);
        let g = WireGraph::from_f64(&diff).unwrap();
        assert_eq!(g.node_count(), 2, "x emitted once, minus once");
        for bits in samples_f64(&rebuilt, 7, 64) {
            assert_eq!(f64::from_bits(bits), 0.0);
        }
    }

    #[test]
    fn all_distributions_and_scalar_ops_roundtrip() {
        let g = Uncertain::normal(1.0, 2.0).unwrap();
        let u = Uncertain::uniform(-1.0, 1.0).unwrap();
        let r = Uncertain::rayleigh(0.5).unwrap();
        let e = Uncertain::from_distribution(Exponential::new(1.5).unwrap());
        let expr = ((&g * 2.0 + 1.0) - (3.0 - &u)).abs().sqrt().exp().ln()
            + (&r % 2.0).clamp(-5.0, 5.0).powi(2).powf(0.5)
            + (2.0 % (4.0 / (&e + 10.0)))
                .sin()
                .cos()
                .atan()
                .to_radians()
                .to_degrees();
        let rebuilt = roundtrip_f64(&expr);
        assert_eq!(samples_f64(&expr, 3, 128), samples_f64(&rebuilt, 3, 128));
    }

    #[test]
    fn comparisons_logic_and_bool_points_roundtrip() {
        let a = Uncertain::normal(0.0, 1.0).unwrap();
        let b = Uncertain::uniform(-2.0, 2.0).unwrap();
        let flag = Uncertain::bernoulli(0.5).unwrap();
        let big = a.max_u(&b).min_u(&a).atan2(&b).ge(0.0);
        let small = a.lt(&b) | a.eq_exact(&b) | a.ne_exact(&b) | a.le(&b);
        let q = (&big & &small) ^ (!&flag) ^ Uncertain::point(true);
        let rebuilt = roundtrip_bool(&q);
        assert_eq!(samples_bool(&q, 99, 256), samples_bool(&rebuilt, 99, 256));
    }

    #[test]
    fn unsupported_nodes_are_rejected_at_encode() {
        use rand::Rng;
        // Opaque closure leaf.
        let opaque = Uncertain::from_fn("d6", |rng| rng.gen_range(1.0..=6.0));
        assert!(matches!(
            WireGraph::from_f64(&opaque),
            Err(WireError::Unsupported(_))
        ));
        // Monadic bind.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let bound = x.flat_map("double", |v| Uncertain::point(v * 2.0));
        assert!(matches!(
            WireGraph::from_f64(&bound),
            Err(WireError::Unsupported(_))
        ));
        // Untagged generic map.
        let mapped = Uncertain::normal(0.0, 1.0)
            .unwrap()
            .map("tanh", |v| v.tanh());
        assert!(matches!(
            WireGraph::from_f64(&mapped),
            Err(WireError::Unsupported(_))
        ));
    }

    #[test]
    fn truncated_and_malformed_bytes_are_rejected() {
        let q = Uncertain::normal(0.0, 1.0).unwrap().gt(0.5);
        let bytes = WireGraph::from_bool(&q).unwrap().to_bytes();
        // Every strict prefix is truncated or malformed, never a panic.
        for cut in 0..bytes.len() {
            assert!(WireGraph::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Unknown version.
        let mut v = bytes.clone();
        v[0] = 9;
        assert!(matches!(
            WireGraph::from_bytes(&v),
            Err(WireError::Malformed(_))
        ));
        // Forward child reference.
        let mut fwd = bytes.clone();
        // Find the gt node's child bytes? Simpler: corrupt the node count.
        fwd[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(WireGraph::from_bytes(&fwd).is_err());
    }

    #[test]
    fn hostile_parameters_fail_decode_not_panic() {
        // An inverted clamp range must be rejected (f64::clamp panics on it).
        let x = Uncertain::normal(0.0, 1.0).unwrap().clamp(-1.0, 1.0);
        let mut g = WireGraph::from_f64(&x).unwrap();
        // Rewrite the clamp bounds through the byte layer.
        if let Some(WireNode::Map(MapTag::F64(UnOp::ClampK(lo, hi)), c)) = g.nodes.pop() {
            let _ = (lo, hi);
            g.nodes
                .push(WireNode::Map(MapTag::F64(UnOp::ClampK(1.0, -1.0)), c));
        } else {
            panic!("expected a clamp node at the root");
        }
        let bytes = g.to_bytes();
        let parsed = WireGraph::from_bytes(&bytes).unwrap();
        assert!(matches!(parsed.decode_f64(), Err(WireError::Malformed(_))));
        // A negative std_dev is rejected by Gaussian::new at decode.
        let sick = WireGraph {
            nodes: vec![WireNode::Leaf(DistSpec::Gaussian {
                mean: 0.0,
                std_dev: -1.0,
            })],
            root_is_bool: false,
        };
        let parsed = WireGraph::from_bytes(&sick.to_bytes()).unwrap();
        assert!(matches!(parsed.decode_f64(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn root_type_mismatch_is_an_error() {
        let q = Uncertain::normal(0.0, 1.0).unwrap().gt(0.0);
        let g = WireGraph::from_bool(&q).unwrap();
        assert!(g.root_is_bool());
        assert!(g.decode_f64().is_err());
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let g = WireGraph::from_f64(&x).unwrap();
        assert!(!g.root_is_bool());
        assert!(g.decode_bool().is_err());
    }
}
