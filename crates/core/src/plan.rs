//! Compiled evaluation plans: the "JIT at the conditional" made literal.
//!
//! The tree-walk interpreter pays three taxes per node per joint sample: a
//! `HashMap<NodeId, _>` probe, a `Box<dyn Any>` heap allocation, and a
//! downcast. A [`Plan`] removes all three for the *statically reachable*
//! part of a network: compilation walks the pinned DAG once (an explicit
//! work stack, children before parents, so depth costs no call-stack),
//! assigns each reachable node a dense slot index (`NodeId → u32`, shared
//! nodes compile once), and fuses the per-node sampling logic into nested
//! closures that read and write a flat slot arena
//! ([`SampleContext`](crate::context::SampleContext)'s epoch-stamped
//! `Vec`). Exactly-once-per-joint-sample sharing (paper Fig. 8) is
//! preserved: a shared node's closure is compiled once and its value is
//! cached in its slot for the duration of the epoch.
//!
//! Dynamic structure falls back gracefully: a `flat_map` body still
//! tree-walks inside the same context (its id-keyed memo traffic is
//! redirected onto slots for planned nodes, so correlations cross the
//! compiled/interpreted boundary correctly), and `encapsulate` /
//! `weight_by` / `condition_on` fork fresh sub-contexts exactly as the
//! interpreter does. Because the compiled closures visit nodes in the same
//! depth-first order as `sample_value`, a plan consumes RNG draws in
//! *bitwise* the same order — for any seed, plan and interpreter produce
//! identical values (covered by this module's tests).
//!
//! On top of plans, [`ParSampler`] provides **deterministic parallel batch
//! sampling**: sample `i` of a batch is drawn from an RNG seeded by a
//! SplitMix64 mix of `(root_seed, i)`, so a batch's contents are a pure
//! function of the root seed and the index range — bitwise identical for
//! any thread count, including 1.

use crate::context::SampleContext;
use crate::node::{NodeId, NodeInfo};
use crate::uncertain::{Uncertain, Value};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compiled node: a closure producing this node's value for the current
/// joint sample, memoizing through the slot arena.
pub(crate) type CompiledFn<T> = Arc<dyn Fn(&mut SampleContext) -> T + Send + Sync>;

/// Compilation state: assigns dense slots and caches each shared node's
/// compiled closure so DAG sharing stays sharing (not duplication) in the
/// compiled form.
pub(crate) struct PlanBuilder {
    slot_of: HashMap<NodeId, u32>,
    compiled: HashMap<NodeId, Box<dyn Any>>,
    next_slot: u32,
    /// When set, every compiled closure is wrapped with a per-invocation
    /// timer feeding the context's slot-cost counters
    /// ([`Plan::compile_profiled`]).
    #[cfg(feature = "obs")]
    profiling: bool,
}

impl PlanBuilder {
    fn new() -> Self {
        Self {
            slot_of: HashMap::new(),
            compiled: HashMap::new(),
            next_slot: 0,
            #[cfg(feature = "obs")]
            profiling: false,
        }
    }

    /// The already-compiled closure for `id`, if this node was reached
    /// before (shared sub-expression).
    pub(crate) fn cached<T: Value>(&self, id: NodeId) -> Option<CompiledFn<T>> {
        self.compiled.get(&id).map(|any| {
            any.downcast_ref::<CompiledFn<T>>()
                .expect("node id compiled with inconsistent type")
                .clone()
        })
    }

    /// Assigns the next dense slot to `id` (first visit only).
    pub(crate) fn assign_slot(&mut self, id: NodeId) -> u32 {
        debug_assert!(!self.slot_of.contains_key(&id), "slot assigned twice");
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slot_of.insert(id, slot);
        slot
    }

    /// Records the compiled closure for `id`.
    pub(crate) fn remember<T: Value>(&mut self, id: NodeId, f: CompiledFn<T>) {
        self.compiled.insert(id, Box::new(f));
    }

    /// Whether `id`'s closure is already cached (shared sub-expression, or
    /// a node pre-compiled by the work-stack driver).
    fn is_compiled(&self, id: NodeId) -> bool {
        self.compiled.contains_key(&id)
    }
}

/// Compiles a network with an explicit work stack: an iterative post-order
/// walk pre-compiles every statically-reachable node bottom-up, so each
/// node's `compile` finds its children already cached and the natural
/// recursion inside `compile` stays O(1) deep. Without this, a deep
/// evidence chain (the ~1.5k-node networks `bench_session` builds) would
/// recurse once per node and overflow the stack in debug builds.
fn compile_root<T: Value>(network: &Uncertain<T>, builder: &mut PlanBuilder) -> CompiledFn<T> {
    let root = network.node().clone() as Arc<dyn NodeInfo>;
    let mut stack: Vec<(Arc<dyn NodeInfo>, bool)> = vec![(Arc::clone(&root), false)];
    while let Some((node, expanded)) = stack.pop() {
        if builder.is_compiled(node.id()) {
            continue;
        }
        if expanded {
            node.precompile(builder);
        } else {
            stack.push((Arc::clone(&node), true));
            // Reversed push so children compile in `sample_value` visit
            // order (left before right), keeping slot assignment and RNG
            // draw order deterministic.
            for child in node.compile_children().into_iter().rev() {
                if !builder.is_compiled(child.id()) {
                    stack.push((child, false));
                }
            }
        }
    }
    network.node().clone().compile(builder)
}

/// Standard per-node compilation wrapper: returns the cached closure for a
/// node reached before (shared sub-expression), otherwise assigns the next
/// dense slot, builds the closure via `make`, and caches it.
pub(crate) fn compile_node<T: Value>(
    builder: &mut PlanBuilder,
    id: NodeId,
    make: impl FnOnce(&mut PlanBuilder, u32) -> CompiledFn<T>,
) -> CompiledFn<T> {
    if let Some(f) = builder.cached::<T>(id) {
        return f;
    }
    let slot = builder.assign_slot(id);
    let f = make(builder, slot);
    #[cfg(feature = "obs")]
    let f = if builder.profiling {
        let inner = f;
        Arc::new(move |ctx: &mut SampleContext| {
            // Classify before running: if the slot is already filled this
            // epoch, the closure will serve the memoized value (a re-entry
            // from a shared parent), not a fresh draw.
            let was_hit = ctx.slot_filled(slot);
            let start = std::time::Instant::now();
            let v = inner(ctx);
            ctx.profile_record(slot, start.elapsed().as_nanos() as u64, was_hit);
            v
        }) as CompiledFn<T>
    } else {
        f
    };
    builder.remember(id, f.clone());
    f
}

/// Mixes a root seed and a per-sample index into an independent sub-stream
/// seed (SplitMix64 finalizer). Sample `i`'s value depends only on
/// `(root_seed, i)`, which is what makes batch sampling shard-independent.
pub(crate) fn sample_seed(root_seed: u64, index: u64) -> u64 {
    let mut z = root_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws joint samples `start .. start + n` of the deterministic stream
/// rooted at `seed`, sharded across `threads` scoped workers. Sample `i`'s
/// RNG is seeded by [`sample_seed`]`(seed, i)`, so the output is a pure
/// function of `(seed, start, n)` — bitwise identical for any thread
/// count. Shared by [`ParSampler`] and the session runtime's batched
/// queries.
pub(crate) fn sample_batch_sharded<T: Value>(
    plan: &Plan<T>,
    seed: u64,
    start: u64,
    n: usize,
    threads: usize,
) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n).max(1);
    let chunk_len = n.div_ceil(workers);
    let mut out: Vec<Option<T>> = vec![None; n];
    std::thread::scope(|scope| {
        for (w, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let base = start + (w * chunk_len) as u64;
            scope.spawn(move || {
                let mut ctx = plan.new_context();
                for (j, cell) in chunk.iter_mut().enumerate() {
                    ctx.reseed(sample_seed(seed, base + j as u64));
                    *cell = Some(plan.evaluate(&mut ctx));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every sample index is covered by exactly one worker"))
        .collect()
}

/// A compiled evaluation plan for one pinned `Uncertain<T>` network.
///
/// Compiling walks the network once and turns it into slot-indexed
/// closures; evaluating draws one joint sample without any hashing, boxing,
/// or downcasting on the static path. Plans are immutable and `Send +
/// Sync`, so one plan can drive any number of contexts — including worker
/// threads ([`ParSampler`]) — concurrently.
///
/// Plans are used internally by [`Evaluator`](crate::Evaluator),
/// [`ParSampler`], and every sampling helper that evaluates one network
/// many times (`evaluate`, `probability_with`, `expected_value_with`,
/// `stats_with`, …). The type is exposed so callers can amortize
/// compilation explicitly and inspect its footprint.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Plan, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(0.0, 1.0)?;
/// let expr = &x * 2.0 + 1.0;
/// let plan = Plan::compile(&expr);
/// // x, *, + are each assigned one slot; literals fold into the closures.
/// assert_eq!(plan.slot_count(), 3);
/// # Ok(())
/// # }
/// ```
pub struct Plan<T> {
    root: CompiledFn<T>,
    slot_of: Arc<HashMap<NodeId, u32>>,
    slot_count: usize,
}

impl<T> fmt::Debug for Plan<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plan")
            .field("slot_count", &self.slot_count)
            .finish_non_exhaustive()
    }
}

impl<T: Value> Plan<T> {
    /// Compiles the network rooted at `network` into slot-indexed closures.
    ///
    /// Compilation is driven by an explicit work stack (children before
    /// parents), so arbitrarily deep networks compile without deep
    /// recursion.
    pub fn compile(network: &Uncertain<T>) -> Self {
        let mut builder = PlanBuilder::new();
        let root = compile_root(network, &mut builder);
        Plan {
            root,
            slot_of: Arc::new(builder.slot_of),
            slot_count: builder.next_slot as usize,
        }
    }

    /// Compiles with per-node cost instrumentation: every slotted node's
    /// closure is wrapped with a timer that charges inclusive nanoseconds
    /// and draw/hit counts to the evaluating context's profile counters.
    /// Sampled values and RNG draw order are bitwise identical to
    /// [`Plan::compile`]; only wall time changes. Used by
    /// [`Evaluator::profiled`](crate::Evaluator::profiled).
    #[cfg(feature = "obs")]
    pub(crate) fn compile_profiled(network: &Uncertain<T>) -> Self {
        let mut builder = PlanBuilder::new();
        builder.profiling = true;
        let root = compile_root(network, &mut builder);
        Plan {
            root,
            slot_of: Arc::new(builder.slot_of),
            slot_count: builder.next_slot as usize,
        }
    }

    /// The slot assignment: which arena slot each reachable node landed
    /// in. Profile reporting joins this against the per-slot counters.
    #[cfg(feature = "obs")]
    pub(crate) fn slots(&self) -> &HashMap<NodeId, u32> {
        &self.slot_of
    }

    /// Number of arena slots this plan uses — the count of memoizable
    /// reachable nodes (point masses need no slot).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Creates a context sized for this plan, with the slot assignment
    /// installed. Callers must [`reseed`](SampleContext::reseed) (or accept
    /// seed 0) before evaluating.
    pub(crate) fn new_context(&self) -> SampleContext {
        let mut ctx = SampleContext::from_seed(0);
        self.install(&mut ctx);
        ctx
    }

    /// Installs this plan's slot assignment into an existing context.
    pub(crate) fn install(&self, ctx: &mut SampleContext) {
        ctx.install_plan(self.slot_of.clone(), self.slot_count);
    }

    /// Draws one joint sample: bumps the context epoch and runs the
    /// compiled root closure.
    pub(crate) fn evaluate(&self, ctx: &mut SampleContext) -> T {
        ctx.begin_joint_sample();
        (self.root)(ctx)
    }
}

/// Deterministic parallel batch sampler over a compiled [`Plan`].
///
/// A batch of `n` joint samples is sharded across `threads` scoped OS
/// threads. Each sample's RNG is seeded by a SplitMix64 mix of
/// `(root_seed, sample_index)`, so the batch's contents depend only on the
/// seed and the running sample index — **bitwise identical for any thread
/// count**. Workers reuse one context each, so the per-sample cost on every
/// shard is the same allocation-free slot-arena path a single-threaded
/// [`Evaluator`](crate::Evaluator) takes.
///
/// # Examples
///
/// ```
/// use uncertain_core::{ParSampler, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(0.0, 1.0)?;
/// let expr = &x + &x;
/// let a = ParSampler::with_threads(&expr, 7, 1).sample_batch(100);
/// let b = ParSampler::with_threads(&expr, 7, 4).sample_batch(100);
/// assert_eq!(a, b, "sharding must not change the samples");
/// # Ok(())
/// # }
/// ```
pub struct ParSampler<T> {
    plan: Plan<T>,
    seed: u64,
    threads: usize,
    cursor: u64,
}

impl<T> fmt::Debug for ParSampler<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParSampler")
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl<T: Value> ParSampler<T> {
    /// Compiles `network` and shards batches across all available cores.
    pub fn new(network: &Uncertain<T>, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(network, seed, threads)
    }

    /// Compiles `network` with an explicit worker count (≥ 1). The worker
    /// count affects wall-clock time only, never the samples produced.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(network: &Uncertain<T>, seed: u64, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        Self {
            plan: Plan::compile(network),
            seed,
            threads,
            cursor: 0,
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Joint samples drawn so far (the next batch starts at this index).
    pub fn samples_drawn(&self) -> u64 {
        self.cursor
    }

    /// The compiled plan driving this sampler.
    pub fn plan(&self) -> &Plan<T> {
        &self.plan
    }

    /// Draws the next `n` joint samples (indices `cursor .. cursor + n` of
    /// this sampler's stream), sharded across the configured workers.
    ///
    /// Equal `(seed, index-range)` always yields equal output, regardless
    /// of `threads` — and identical to
    /// [`Evaluator::sample_batch`](crate::Evaluator::sample_batch) with the
    /// same seed.
    pub fn sample_batch(&mut self, n: usize) -> Vec<T> {
        let start = self.cursor;
        self.cursor += n as u64;
        sample_batch_sharded(&self.plan, self.seed, start, n, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Debug;

    /// The central equivalence claim: for any seed, the compiled plan and
    /// the tree-walk interpreter produce bitwise-identical joint samples
    /// (same values, same RNG draw order).
    fn assert_plan_matches_treewalk<T: Value + PartialEq + Debug>(u: &Uncertain<T>, seeds: u64) {
        let plan = Plan::compile(u);
        let mut ctx = plan.new_context();
        for seed in 0..seeds {
            ctx.reseed(seed);
            let via_plan = plan.evaluate(&mut ctx);
            let mut tree_ctx = SampleContext::from_seed(seed);
            let via_tree = u.node().sample_value(&mut tree_ctx);
            assert_eq!(via_plan, via_tree, "diverged at seed {seed}");
        }
    }

    #[test]
    fn arithmetic_chain_matches_treewalk() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(1.0, 2.0).unwrap();
        let expr = (&x + &y) * 3.0 - &x / &y + 0.5;
        assert_plan_matches_treewalk(&expr, 64);
    }

    #[test]
    fn shared_nodes_stay_correlated() {
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let zero = x.clone() - x;
        let plan = Plan::compile(&zero);
        let mut ctx = plan.new_context();
        for seed in 0..100 {
            ctx.reseed(seed);
            assert_eq!(plan.evaluate(&mut ctx), 0.0, "x - x must be exactly 0");
        }
    }

    #[test]
    fn comparisons_and_logic_match_treewalk() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::normal(0.2, 1.0).unwrap();
        let a = x.gt(0.0);
        let b = y.lt(1.0);
        let cond = &a & &b;
        assert_plan_matches_treewalk(&cond, 64);
    }

    #[test]
    fn bind_matches_treewalk() {
        // flat_map builds its inner network per joint sample; the plan
        // tree-walks it inside the same context.
        let x = Uncertain::uniform(0.5, 2.0).unwrap();
        let dependent = x.flat_map("noise(x)", |v| Uncertain::normal(v, v).unwrap());
        assert_plan_matches_treewalk(&dependent, 64);
    }

    #[test]
    fn bind_closing_over_planned_node_stays_correlated() {
        // The bind's inner network shares a leaf with the planned outer
        // network: the id-to-slot redirection must keep both views of `x`
        // perfectly correlated across the compiled/interpreted boundary.
        let x = Uncertain::normal(0.0, 5.0).unwrap();
        let captured = x.clone();
        let echoed = x.flat_map("echo-x", move |_| captured.clone());
        let diff = echoed - x;
        assert_plan_matches_treewalk(&diff, 32);
        let plan = Plan::compile(&diff);
        let mut ctx = plan.new_context();
        for seed in 0..50 {
            ctx.reseed(seed);
            assert_eq!(
                plan.evaluate(&mut ctx),
                0.0,
                "cross-boundary sharing broken at seed {seed}"
            );
        }
    }

    #[test]
    fn encapsulated_matches_treewalk() {
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let independent = x.encapsulate() - x.encapsulate();
        assert_plan_matches_treewalk(&independent, 64);
        // And the encapsulated copies really decorrelate under the plan.
        let plan = Plan::compile(&independent);
        let mut ctx = plan.new_context();
        let nonzero = (0..100)
            .filter(|&seed| {
                ctx.reseed(seed);
                plan.evaluate(&mut ctx) != 0.0
            })
            .count();
        assert!(nonzero > 90, "nonzero={nonzero}");
    }

    #[test]
    fn weighted_and_conditioned_match_treewalk() {
        let x = Uncertain::normal(5.0, 2.0).unwrap();
        let weighted = x.weight_by_k(|v| (-0.5 * (v - 4.0) * (v - 4.0)).exp(), 4);
        assert_plan_matches_treewalk(&weighted, 64);

        let y = Uncertain::normal(0.0, 1.0).unwrap();
        let conditioned = y.condition_on(|v: &f64| *v > 0.0, 64);
        assert_plan_matches_treewalk(&conditioned, 64);
    }

    #[test]
    fn zero_weight_prior_falls_back_under_plan() {
        let x = Uncertain::normal(5.0, 1.0).unwrap();
        let weighted = x.weight_by_k(|_| 0.0, 8);
        let plan = Plan::compile(&weighted);
        let mut ctx = plan.new_context();
        ctx.reseed(4);
        let v = plan.evaluate(&mut ctx);
        assert!((0.0..10.0).contains(&v));
    }

    #[test]
    fn tuples_and_non_numeric_payloads_match_treewalk() {
        let x = Uncertain::uniform(0.0, 1.0).unwrap();
        let pair = x.gt(0.5).zip(&x.lt(0.9));
        assert_plan_matches_treewalk(&pair, 64);
    }

    #[test]
    fn slot_count_reflects_sharing() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let shared = &x + &x; // x once, + once
        assert_eq!(Plan::compile(&shared).slot_count(), 2);
        let unshared = Uncertain::normal(0.0, 1.0).unwrap() + Uncertain::normal(0.0, 1.0).unwrap();
        assert_eq!(Plan::compile(&unshared).slot_count(), 3);
    }

    #[test]
    fn sample_seed_mixing_is_index_sensitive() {
        assert_ne!(sample_seed(0, 0), sample_seed(0, 1));
        assert_ne!(sample_seed(0, 0), sample_seed(1, 0));
        assert_eq!(sample_seed(42, 7), sample_seed(42, 7));
    }

    #[test]
    fn par_sampler_is_thread_count_invariant() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let y = Uncertain::uniform(0.0, 1.0).unwrap();
        let expr = &x * &y + &x;
        let baseline = ParSampler::with_threads(&expr, 99, 1).sample_batch(257);
        for threads in [2, 3, 8] {
            let sharded = ParSampler::with_threads(&expr, 99, threads).sample_batch(257);
            assert_eq!(baseline, sharded, "threads={threads}");
        }
    }

    #[test]
    fn par_sampler_batches_continue_the_stream() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut one_shot = ParSampler::with_threads(&x, 5, 4);
        let all = one_shot.sample_batch(100);
        let mut split = ParSampler::with_threads(&x, 5, 2);
        let mut joined = split.sample_batch(37);
        joined.extend(split.sample_batch(63));
        assert_eq!(all, joined, "batch boundaries must not change samples");
        assert_eq!(split.samples_drawn(), 100);
    }

    #[test]
    fn par_sampler_empty_batch_is_fine() {
        let x = Uncertain::point(1.0);
        let mut s = ParSampler::with_threads(&x, 1, 4);
        assert!(s.sample_batch(0).is_empty());
        assert_eq!(s.sample_batch(3), vec![1.0, 1.0, 1.0]);
    }
}
