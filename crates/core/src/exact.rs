//! Analytic recognition of tractable subgraphs — the zero-sample backend.
//!
//! The SPRT machinery spends thousands of draws deciding conditionals that
//! have closed forms. This module walks the node DAG through the same
//! type-erased surface the wire codec uses ([`NodeInfo::wire_op`] +
//! [`NodeInfo::children`]) and recognizes two families:
//!
//! * **Bernoulli/boolean evidence chains** — `&`/`|`/`^`/`!` over Bernoulli
//!   leaves and point masses whose branches touch *disjoint* leaf sets.
//!   Distinct leaves draw from independent RNG substreams, so the
//!   connectives propagate success probabilities exactly, the way Beta
//!   pseudo-counts propagate through an evidence chain (Cerutti et al.).
//! * **Linear-Gaussian subgraphs** — affine maps and sums of Gaussian
//!   leaves compared against (affine transforms of) each other reduce to a
//!   closed-form normal CDF, exact conditioning in the Stein & Staton
//!   sense. A *pair* of comparisons sharing Gaussian leaves is still
//!   exact: the joint law is bivariate normal and the connective reduces
//!   to `Φ₂` (computed here by a smooth one-dimensional quadrature).
//!
//! Scalar queries (`e`/`stats`) are served by affine **moment
//! propagation**: any affine combination of closed-form leaves (Gaussian,
//! Uniform, Rayleigh, Exponential, Beta) has an exact mean and variance;
//! when every contributing leaf is Gaussian the full law is Gaussian and
//! quantiles are exact too.
//!
//! Everything else — opaque closures, `flat_map`, conditioning,
//! non-affine operators over non-constant operands — is *declined*
//! (`None`), and the caller falls back to the sampling path bitwise
//! unchanged. The analysis never guesses: a returned law is exact (or an
//! exact moment match), not an approximation of convenience.
//!
//! Verdicts are cached per root `NodeId` in the session's plan cache,
//! beside the closure/kernel tapes (mirroring the `no_tape` memo), so the
//! walk runs once per graph, not once per query.

use crate::kernel::{BinOp, BoolOp, CmpOp, Map2Tag, MapTag, UnOp};
use crate::node::{NodeId, NodeInfo};
use crate::wire::WireOp;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use uncertain_dist::{Continuous, DistSpec, Gaussian};

/// How an exact answer was obtained — carried in
/// [`Provenance::Exact`](crate::Provenance::Exact) so callers can see
/// which closed form decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExactMethod {
    /// Boolean evidence-chain propagation over independent branches
    /// (Bernoulli success probabilities composed exactly, as Beta
    /// pseudo-counts compose).
    BetaChain,
    /// Linear-Gaussian comparison(s) reduced to the normal CDF `Φ` (or
    /// the bivariate `Φ₂` for correlated pairs).
    GaussianCdf,
    /// Affine moment propagation over closed-form leaves (exact mean and
    /// variance; full law when all leaves are Gaussian).
    Moment,
}

impl std::fmt::Display for ExactMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactMethod::BetaChain => write!(f, "beta-chain"),
            ExactMethod::GaussianCdf => write!(f, "gaussian-cdf"),
            ExactMethod::Moment => write!(f, "moment"),
        }
    }
}

/// The analytic law of a recognized `Uncertain<bool>` graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoolLaw {
    /// `Pr[root = true]`, exactly.
    pub p: f64,
    /// Which closed form produced `p`.
    pub method: ExactMethod,
}

/// The analytic law of a recognized `Uncertain<f64>` graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarLaw {
    /// Exact mean of the root.
    pub mean: f64,
    /// Exact variance of the root.
    pub variance: f64,
    /// Whether the root is itself Gaussian (affine in Gaussian leaves
    /// only) — when `true`, quantiles are exact, not just moments.
    pub gaussian: bool,
    /// Which closed form produced the law.
    pub method: ExactMethod,
}

impl ScalarLaw {
    /// Standard deviation of the root.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Exact quantile at probability `p` — only meaningful when
    /// [`ScalarLaw::gaussian`] holds (callers gate on it).
    pub(crate) fn quantile(&self, p: f64) -> f64 {
        if self.variance <= 0.0 {
            return self.mean;
        }
        let g = Gaussian::new(self.mean, self.std_dev())
            .expect("recognized law has positive finite std-dev");
        g.quantile(p)
    }
}

/// Recursion budget for the analysis walk — matches the plan compiler's
/// depth tolerance; graphs deeper than this decline to the sampling path
/// rather than risk the stack.
const MAX_ANALYSIS_DEPTH: usize = 2500;

/// Analyzes a `bool`-rooted DAG; `None` means "not analytically
/// tractable — sample it".
pub(crate) fn analyze_bool(root: &Arc<dyn NodeInfo>) -> Option<BoolLaw> {
    let mut a = Analyzer::default();
    let event = a.event_of(root, 0)?;
    let method = if a.used_gaussian {
        ExactMethod::GaussianCdf
    } else {
        ExactMethod::BetaChain
    };
    Some(BoolLaw {
        p: event.p.clamp(0.0, 1.0),
        method,
    })
}

/// Analyzes an `f64`-rooted DAG into an exact moment (or full Gaussian)
/// law; `None` means "not analytically tractable — sample it".
pub(crate) fn analyze_f64(root: &Arc<dyn NodeInfo>) -> Option<ScalarLaw> {
    let mut a = Analyzer::default();
    let aff = a.affine_of(root, 0)?;
    let (mean, variance) = a.moments(&aff)?;
    let gaussian = aff.coeffs.keys().all(|id| a.leaves[id].gaussian);
    Some(ScalarLaw {
        mean,
        variance,
        gaussian,
        method: ExactMethod::Moment,
    })
}

/// Exact first and second moments of one closed-form leaf.
#[derive(Debug, Clone, Copy)]
struct LeafMoments {
    mean: f64,
    var: f64,
    gaussian: bool,
}

fn leaf_moments(spec: DistSpec) -> Option<LeafMoments> {
    let m = match spec {
        DistSpec::Gaussian { mean, std_dev } => LeafMoments {
            mean,
            var: std_dev * std_dev,
            gaussian: true,
        },
        DistSpec::Uniform { low, high } => LeafMoments {
            mean: 0.5 * (low + high),
            var: (high - low) * (high - low) / 12.0,
            gaussian: false,
        },
        DistSpec::Rayleigh { scale } => LeafMoments {
            mean: scale * (std::f64::consts::FRAC_PI_2).sqrt(),
            var: (2.0 - std::f64::consts::FRAC_PI_2) * scale * scale,
            gaussian: false,
        },
        DistSpec::Exponential { rate } => LeafMoments {
            mean: 1.0 / rate,
            var: 1.0 / (rate * rate),
            gaussian: false,
        },
        DistSpec::Beta { alpha, beta } => {
            let s = alpha + beta;
            LeafMoments {
                mean: alpha / s,
                var: alpha * beta / (s * s * (s + 1.0)),
                gaussian: false,
            }
        }
        // Bernoulli is bool-valued and never appears in an f64 position;
        // `DistSpec` is non-exhaustive, so unknown future shapes decline.
        _ => return None,
    };
    (m.mean.is_finite() && m.var.is_finite() && m.var >= 0.0).then_some(m)
}

/// An affine form over leaf nodes: `konst + Σ coeffs[id] · leaf(id)`.
///
/// Shared leaves merge by coefficient addition, which is exactly how
/// correlation through shared ancestry behaves under ancestral sampling
/// (paper Fig. 8) — `x - x` really is the constant `0`.
#[derive(Debug, Clone, PartialEq)]
struct Affine {
    coeffs: BTreeMap<NodeId, f64>,
    konst: f64,
}

impl Affine {
    fn constant(k: f64) -> Self {
        Affine {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    fn leaf(id: NodeId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(id, 1.0);
        Affine { coeffs, konst: 0.0 }
    }

    fn as_constant(&self) -> Option<f64> {
        self.coeffs.is_empty().then_some(self.konst)
    }

    fn scaled(&self, s: f64) -> Self {
        Affine {
            coeffs: self.coeffs.iter().map(|(&id, &c)| (id, c * s)).collect(),
            konst: self.konst * s,
        }
    }

    fn shifted(&self, k: f64) -> Self {
        Affine {
            coeffs: self.coeffs.clone(),
            konst: self.konst + k,
        }
    }

    /// `self + sign · other`, dropping coefficients that cancel exactly.
    fn combined(&self, other: &Affine, sign: f64) -> Self {
        let mut coeffs = self.coeffs.clone();
        for (&id, &c) in &other.coeffs {
            let e = coeffs.entry(id).or_insert(0.0);
            *e += sign * c;
            if *e == 0.0 {
                coeffs.remove(&id);
            }
        }
        Affine {
            coeffs,
            konst: self.konst + sign * other.konst,
        }
    }

    fn is_finite(&self) -> bool {
        self.konst.is_finite() && self.coeffs.values().all(|c| c.is_finite())
    }
}

/// A recognized boolean event with enough structure to keep combining.
///
/// `gauss` is `Some` exactly when the event *is* `[form < 0]` for a
/// single linear-Gaussian form — the shape that can still be joined with
/// a correlated sibling through `Φ₂`. Composite events (already-combined
/// connectives) drop the atom but keep their leaf set, so disjoint
/// (independent) combination upward remains exact.
#[derive(Debug, Clone)]
struct Event {
    p: f64,
    leaves: BTreeSet<NodeId>,
    gauss: Option<GaussAtom>,
}

impl Event {
    fn constant(p: f64) -> Self {
        Event {
            p,
            leaves: BTreeSet::new(),
            gauss: None,
        }
    }

    fn complement(&self) -> Self {
        Event {
            p: 1.0 - self.p,
            leaves: self.leaves.clone(),
            // [form < 0]ᶜ is [-form ≤ 0]; the boundary has measure zero
            // for a nondegenerate Gaussian form, so the strict atom is
            // the same event up to a null set.
            gauss: self.gauss.as_ref().map(GaussAtom::negated),
        }
    }
}

/// The standardized description of `[form < 0]` for a nondegenerate
/// linear-Gaussian `form`.
#[derive(Debug, Clone)]
struct GaussAtom {
    form: Affine,
    mean: f64,
    sd: f64,
}

impl GaussAtom {
    /// The atom for the complementary event `[-form < 0]`.
    fn negated(&self) -> Self {
        GaussAtom {
            form: self.form.scaled(-1.0),
            mean: -self.mean,
            sd: self.sd,
        }
    }

    /// `h` such that the event is `[Z < h]` for standardized `Z`.
    fn h(&self) -> f64 {
        -self.mean / self.sd
    }
}

#[derive(Default)]
struct Analyzer {
    /// Moments of every leaf seen so far, by node id.
    leaves: HashMap<NodeId, LeafMoments>,
    /// Affine forms already derived, by node id — shared subexpressions
    /// analyze once (the DAG encodes sharing by identity).
    affine_memo: HashMap<NodeId, Option<Affine>>,
    /// Whether any normal-CDF reduction fired (method attribution).
    used_gaussian: bool,
}

impl Analyzer {
    /// Exact mean/variance of an affine form over independent leaves.
    fn moments(&self, aff: &Affine) -> Option<(f64, f64)> {
        let mut mean = aff.konst;
        let mut var = 0.0;
        for (id, &c) in &aff.coeffs {
            let m = self.leaves.get(id)?;
            mean += c * m.mean;
            var += c * c * m.var;
        }
        (mean.is_finite() && var.is_finite()).then_some((mean, var))
    }

    /// Covariance of two affine forms over the same independent leaves.
    fn covariance(&self, a: &Affine, b: &Affine) -> f64 {
        a.coeffs
            .iter()
            .filter_map(|(id, &ca)| {
                let cb = b.coeffs.get(id)?;
                Some(ca * cb * self.leaves[id].var)
            })
            .sum()
    }

    /// Derives the affine form of an `f64`-valued node, or declines.
    fn affine_of(&mut self, node: &Arc<dyn NodeInfo>, depth: usize) -> Option<Affine> {
        if depth > MAX_ANALYSIS_DEPTH {
            return None;
        }
        let id = node.id();
        if let Some(memo) = self.affine_memo.get(&id) {
            return memo.clone();
        }
        let result = self.affine_of_uncached(node, depth);
        self.affine_memo.insert(id, result.clone());
        result
    }

    fn affine_of_uncached(&mut self, node: &Arc<dyn NodeInfo>, depth: usize) -> Option<Affine> {
        let aff = match node.wire_op()? {
            WireOp::Leaf(spec) => {
                let m = leaf_moments(spec)?;
                self.leaves.insert(node.id(), m);
                Affine::leaf(node.id())
            }
            WireOp::PointF64(x) => Affine::constant(x),
            WireOp::PointBool(_) => return None,
            WireOp::Map(MapTag::NotBool) => return None,
            WireOp::Map(MapTag::F64(op)) => {
                let children = node.children();
                let child = self.affine_of(children.first()?, depth + 1)?;
                if let Some(k) = child.as_constant() {
                    // Any tagged unary folds over a constant — the scalar
                    // `apply` twin is the loop body the kernel would run.
                    Affine::constant(op.apply(k))
                } else {
                    match op {
                        UnOp::Neg => child.scaled(-1.0),
                        UnOp::AddK(k) => child.shifted(k),
                        UnOp::SubK(k) => child.shifted(-k),
                        UnOp::RsubK(k) => child.scaled(-1.0).shifted(k),
                        UnOp::MulK(k) => child.scaled(k),
                        UnOp::DivK(k) => child.scaled(1.0 / k),
                        UnOp::ToRadians => child.scaled(std::f64::consts::PI / 180.0),
                        UnOp::ToDegrees => child.scaled(180.0 / std::f64::consts::PI),
                        _ => return None,
                    }
                }
            }
            WireOp::Map2(Map2Tag::F64(op)) => {
                let children = node.children();
                let (l, r) = (children.first()?, children.get(1)?);
                let a = self.affine_of(l, depth + 1)?;
                let b = self.affine_of(r, depth + 1)?;
                match (a.as_constant(), b.as_constant()) {
                    (Some(x), Some(y)) => Affine::constant(op.apply(x, y)),
                    _ => match op {
                        BinOp::Add => a.combined(&b, 1.0),
                        BinOp::Sub => a.combined(&b, -1.0),
                        BinOp::Mul => match (a.as_constant(), b.as_constant()) {
                            (Some(x), None) => b.scaled(x),
                            (None, Some(y)) => a.scaled(y),
                            // Products of non-constant forms are not
                            // affine (and not Gaussian).
                            _ => return None,
                        },
                        BinOp::Div => match b.as_constant() {
                            Some(y) => a.scaled(1.0 / y),
                            None => return None,
                        },
                        _ => return None,
                    },
                }
            }
            WireOp::Map2(Map2Tag::Cmp(_) | Map2Tag::Bool(_)) => return None,
        };
        aff.is_finite().then_some(aff)
    }

    /// Derives the event description of a `bool`-valued node, or declines.
    fn event_of(&mut self, node: &Arc<dyn NodeInfo>, depth: usize) -> Option<Event> {
        if depth > MAX_ANALYSIS_DEPTH {
            return None;
        }
        let event = match node.wire_op()? {
            WireOp::Leaf(DistSpec::Bernoulli { p }) => {
                if !(0.0..=1.0).contains(&p) {
                    return None;
                }
                let mut leaves = BTreeSet::new();
                leaves.insert(node.id());
                Event {
                    p,
                    leaves,
                    gauss: None,
                }
            }
            WireOp::Leaf(_) | WireOp::PointF64(_) | WireOp::Map(MapTag::F64(_)) => return None,
            WireOp::PointBool(b) => Event::constant(if b { 1.0 } else { 0.0 }),
            WireOp::Map(MapTag::NotBool) => {
                let children = node.children();
                self.event_of(children.first()?, depth + 1)?.complement()
            }
            WireOp::Map2(Map2Tag::Cmp(op)) => {
                let children = node.children();
                let (l, r) = (children.first()?, children.get(1)?);
                let a = self.affine_of(l, depth + 1)?;
                let b = self.affine_of(r, depth + 1)?;
                self.comparison_event(op, &a, &b)?
            }
            WireOp::Map2(Map2Tag::Bool(op)) => {
                let children = node.children();
                let (l, r) = (children.first()?, children.get(1)?);
                let a = self.event_of(l, depth + 1)?;
                let b = self.event_of(r, depth + 1)?;
                self.connective_event(op, a, b)?
            }
            WireOp::Map2(Map2Tag::F64(_)) => return None,
        };
        event.p.is_finite().then_some(event)
    }

    /// The event `[a op b]` for affine `a`, `b` — a constant when the
    /// difference degenerates, otherwise a normal-CDF atom (which
    /// requires every contributing leaf to be Gaussian).
    fn comparison_event(&mut self, op: CmpOp, a: &Affine, b: &Affine) -> Option<Event> {
        // Canonical orientation: express the event through d = a − b.
        let d = a.combined(b, -1.0);
        let (mean, var) = self.moments(&d)?;
        if d.coeffs.is_empty() || var == 0.0 {
            // Degenerate: the comparison is a coin that always lands the
            // same way. (A zero-variance non-empty form can only arise
            // from a zero-width Uniform-like leaf; its mean is its value.)
            let p = if op.apply(mean, 0.0) { 1.0 } else { 0.0 };
            return Some(Event::constant(p));
        }
        if !d.coeffs.keys().all(|id| self.leaves[id].gaussian) {
            // Non-Gaussian comparisons have no closed-form CDF here.
            return None;
        }
        let sd = var.sqrt();
        // For a continuous law, ties are null events: Ge/Gt and Le/Lt
        // coincide, Eq is impossible, Ne is sure. Both Eq and Ne are
        // *constants* — independent of every leaf up to a null set.
        let (form, form_mean) = match op {
            CmpOp::Lt | CmpOp::Le => (d, mean),
            CmpOp::Gt | CmpOp::Ge => (d.scaled(-1.0), -mean),
            CmpOp::Eq => return Some(Event::constant(0.0)),
            CmpOp::Ne => return Some(Event::constant(1.0)),
        };
        let atom = GaussAtom {
            mean: form_mean,
            sd,
            form,
        };
        self.used_gaussian = true;
        let p = phi(atom.h());
        Some(Event {
            p,
            leaves: atom.form.coeffs.keys().copied().collect(),
            gauss: Some(atom),
        })
    }

    /// Combines two recognized events through a boolean connective.
    fn connective_event(&mut self, op: BoolOp, a: Event, b: Event) -> Option<Event> {
        // Constant operands short-circuit *before* the disjointness
        // check so they absorb/pass the other side with its atom intact
        // (e.g. `true & cmp` can still pair with a correlated sibling).
        for (konst, other) in [(&a, &b), (&b, &a)] {
            if konst.leaves.is_empty() && (konst.p == 0.0 || konst.p == 1.0) {
                let t = konst.p == 1.0;
                return Some(match (op, t) {
                    (BoolOp::And, true) | (BoolOp::Xor, false) | (BoolOp::Or, false) => {
                        other.clone()
                    }
                    (BoolOp::And, false) => Event::constant(0.0),
                    (BoolOp::Or, true) => Event::constant(1.0),
                    (BoolOp::Xor, true) => other.complement(),
                });
            }
        }
        if a.leaves.is_disjoint(&b.leaves) {
            // Independent branches: exact product rules. The combined
            // event is no longer a single atom, but its leaf set keeps
            // independence decidable further up.
            let p = match op {
                BoolOp::And => a.p * b.p,
                BoolOp::Or => a.p + b.p - a.p * b.p,
                BoolOp::Xor => a.p + b.p - 2.0 * a.p * b.p,
            };
            let leaves = a.leaves.union(&b.leaves).copied().collect();
            return Some(Event {
                p,
                leaves,
                gauss: None,
            });
        }
        // Overlapping leaves: exact only when both sides are single
        // linear-Gaussian atoms — the pair is bivariate normal and the
        // joint probability is Φ₂ with the forms' exact correlation.
        let (ga, gb) = (a.gauss.as_ref()?, b.gauss.as_ref()?);
        let rho = self.covariance(&ga.form, &gb.form) / (ga.sd * gb.sd);
        let p_and = phi2(ga.h(), gb.h(), rho.clamp(-1.0, 1.0));
        let p = match op {
            BoolOp::And => p_and,
            BoolOp::Or => a.p + b.p - p_and,
            BoolOp::Xor => a.p + b.p - 2.0 * p_and,
        };
        let leaves = a.leaves.union(&b.leaves).copied().collect();
        Some(Event {
            p,
            leaves,
            gauss: None,
        })
    }
}

/// Standard normal CDF `Φ(z)`.
fn phi(z: f64) -> f64 {
    // `Gaussian::new(0, 1)` cannot fail; keep one shared standard normal.
    Gaussian::new(0.0, 1.0).expect("standard normal").cdf(z)
}

/// Bivariate standard normal CDF `Φ₂(h, k, ρ) = Pr[Z₁ < h, Z₂ < k]` with
/// correlation `ρ`.
///
/// Uses the single-integral form with the `sin θ` substitution,
///
/// ```text
/// Φ₂(h, k, ρ) = Φ(h)Φ(k)
///   + (1/2π) ∫₀^{asin ρ} exp(−(h² + k² − 2hk·sinθ) / (2cos²θ)) dθ
/// ```
///
/// whose integrand is smooth on the whole range (as `θ → ±π/2` the
/// exponent tends to a finite limit when the endpoint is reachable),
/// integrated by composite Simpson. Deterministic, ~µs, and accurate to
/// well below the SPRT's indifference region.
fn phi2(h: f64, k: f64, rho: f64) -> f64 {
    if rho >= 1.0 - 1e-12 {
        // Perfectly correlated: Z₁ = Z₂.
        return phi(h.min(k));
    }
    if rho <= -1.0 + 1e-12 {
        // Perfectly anti-correlated: Z₂ = −Z₁.
        return (phi(h) + phi(k) - 1.0).max(0.0);
    }
    if rho == 0.0 {
        return phi(h) * phi(k);
    }
    let upper = rho.asin();
    let f = |theta: f64| {
        let (s, c) = theta.sin_cos();
        (-(h * h + k * k - 2.0 * h * k * s) / (2.0 * c * c)).exp()
    };
    // Composite Simpson over [0, asin ρ], 200 panels.
    const PANELS: usize = 200;
    let step = upper / PANELS as f64;
    let mut acc = f(0.0) + f(upper);
    for i in 1..PANELS {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(step * i as f64);
    }
    let integral = acc * step / 3.0;
    (phi(h) * phi(k) + integral / std::f64::consts::TAU).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncertain::Uncertain;

    fn law_of_bool(u: &Uncertain<bool>) -> Option<BoolLaw> {
        analyze_bool(&(u.node().clone() as Arc<dyn NodeInfo>))
    }

    fn law_of_f64(u: &Uncertain<f64>) -> Option<ScalarLaw> {
        analyze_f64(&(u.node().clone() as Arc<dyn NodeInfo>))
    }

    #[test]
    fn phi2_reduces_to_known_special_cases() {
        // Independence: Φ₂(h, k, 0) = Φ(h)Φ(k).
        assert!((phi2(0.3, -0.7, 0.0) - phi(0.3) * phi(-0.7)).abs() < 1e-12);
        // Perfect correlation: Φ(min).
        assert!((phi2(0.5, 1.5, 1.0) - phi(0.5)).abs() < 1e-12);
        // Perfect anti-correlation: max(0, Φ(h)+Φ(k)−1).
        assert!((phi2(0.5, 0.8, -1.0) - (phi(0.5) + phi(0.8) - 1.0)).abs() < 1e-12);
        // Symmetry in (h, k).
        assert!((phi2(0.4, 1.1, 0.6) - phi2(1.1, 0.4, 0.6)).abs() < 1e-12);
        // Marginal consistency: Φ₂(h, ∞-ish, ρ) ≈ Φ(h).
        assert!((phi2(0.25, 8.0, 0.6) - phi(0.25)).abs() < 1e-9);
        // Known value: Φ₂(0, 0, ρ) = 1/4 + asin(ρ)/2π.
        let rho = 0.37_f64;
        let expected = 0.25 + rho.asin() / (2.0 * std::f64::consts::PI);
        assert!((phi2(0.0, 0.0, rho) - expected).abs() < 1e-9);
    }

    #[test]
    fn affine_gaussian_comparison_is_recognized() {
        let x = Uncertain::normal(3.0, 2.0).unwrap();
        let cond = (&x * 2.0 + 1.0).lt(7.0);
        let law = law_of_bool(&cond).expect("linear-Gaussian comparison");
        // 2x+1 ~ N(7, 16): Pr[< 7] = 1/2.
        assert!((law.p - 0.5).abs() < 1e-12);
        assert_eq!(law.method, ExactMethod::GaussianCdf);
    }

    #[test]
    fn shared_leaves_cancel_exactly() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let diff = &x - &x;
        let law = law_of_f64(&diff).expect("x - x is constant");
        assert_eq!(law.mean, 0.0);
        assert_eq!(law.variance, 0.0);
        assert!(law.gaussian, "no non-Gaussian leaf contributes");
    }

    #[test]
    fn bernoulli_chain_propagates_exactly() {
        let a = Uncertain::<bool>::bernoulli(0.3).unwrap();
        let b = Uncertain::<bool>::bernoulli(0.6).unwrap();
        let c = Uncertain::<bool>::bernoulli(0.9).unwrap();
        let chain = &(&a & &b) | &!&c;
        let law = law_of_bool(&chain).expect("independent evidence chain");
        let (pa, pb, pc) = (0.3, 0.6, 0.1);
        let p_and = pa * pb;
        let expected = p_and + pc - p_and * pc;
        assert!((law.p - expected).abs() < 1e-12);
        assert_eq!(law.method, ExactMethod::BetaChain);
    }

    #[test]
    fn shared_bernoulli_leaves_decline() {
        let a = Uncertain::<bool>::bernoulli(0.5).unwrap();
        assert!(law_of_bool(&(&a & &!&a)).is_none());
    }

    #[test]
    fn correlated_gaussian_pair_uses_phi2() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let a = x.lt(0.0);
        let b = x.gt(0.0);
        // a & b is impossible; a | b is sure (up to null sets).
        let both = law_of_bool(&(&a & &b)).expect("correlated pair");
        assert!(both.p.abs() < 1e-9, "got {}", both.p);
        let either = law_of_bool(&(&a | &b)).expect("correlated pair");
        assert!((either.p - 1.0).abs() < 1e-9, "got {}", either.p);
    }

    #[test]
    fn transcendental_and_opaque_graphs_decline() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        assert!(law_of_bool(&x.sin().lt(0.5)).is_none());
        assert!(law_of_f64(&(&x * &x)).is_none());
        let opaque = x.map("opaque", |v: f64| v + 1.0);
        assert!(law_of_f64(&opaque).is_none());
    }

    #[test]
    fn constant_subtrees_fold_through_nonlinear_ops() {
        // sqrt(4) is constant, so the whole comparison is analyzable
        // even though sqrt of a variable would decline.
        let four = Uncertain::<f64>::point(4.0);
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let cond = x.lt(four.sqrt());
        let law = law_of_bool(&cond).expect("constant-folded rhs");
        assert!((law.p - phi(2.0)).abs() < 1e-12);
    }

    #[test]
    fn mixed_leaf_moments_are_exact() {
        let u = Uncertain::uniform(0.0, 6.0).unwrap();
        let e = Uncertain::from_distribution(uncertain_dist::Exponential::new(2.0).unwrap());
        let combo = &(&u * 2.0) + &e;
        let law = law_of_f64(&combo).expect("affine over closed-form leaves");
        assert!((law.mean - (6.0 + 0.5)).abs() < 1e-12);
        assert!((law.variance - (4.0 * 3.0 + 0.25)).abs() < 1e-12);
        assert!(!law.gaussian);
        assert_eq!(law.method, ExactMethod::Moment);
    }

    #[test]
    fn beta_leaf_moments_are_exact() {
        let b = Uncertain::beta(2.0, 5.0).unwrap();
        let law = law_of_f64(&b).expect("beta leaf");
        assert!((law.mean - 2.0 / 7.0).abs() < 1e-12);
        assert!((law.variance - 10.0 / (49.0 * 8.0)).abs() < 1e-12);
    }
}
