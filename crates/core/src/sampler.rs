//! The joint-sample driver.

use crate::context::SampleContext;
use crate::plan::Plan;
use crate::uncertain::{Uncertain, Value};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Draws joint samples from `Uncertain<T>` networks.
///
/// Each call to [`Sampler::sample`] performs one *joint sample*: a fresh
/// evaluation context is created, the network is evaluated by ancestral
/// sampling (leaves first, memoized by node id), and the root value is
/// returned (paper §4.2). The sampler also counts joint samples, which is
/// how the evaluation harness reports "samples per cell update"
/// (paper Fig. 14b).
///
/// # Examples
///
/// ```
/// use uncertain_core::{Sampler, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(1.0, 0.5)?;
/// let mut s = Sampler::seeded(11);
/// let values = s.samples(&x, 100);
/// assert_eq!(values.len(), 100);
/// assert_eq!(s.joint_samples(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sampler {
    rng: StdRng,
    joint_samples: u64,
}

impl Sampler {
    /// Creates a sampler seeded from OS entropy.
    pub fn new() -> Self {
        Self {
            rng: StdRng::from_entropy(),
            joint_samples: 0,
        }
    }

    /// Creates a deterministic sampler — same seed, same sample stream.
    /// Every experiment in this repository is driven through seeded
    /// samplers so the paper's figures regenerate exactly.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            joint_samples: 0,
        }
    }

    /// Draws one joint sample of the network rooted at `u`.
    pub fn sample<T: Value>(&mut self, u: &Uncertain<T>) -> T {
        self.joint_samples += 1;
        let mut ctx = SampleContext::from_seed(self.rng.gen());
        u.node().sample_value(&mut ctx)
    }

    /// Draws `n` joint samples into a `Vec`.
    ///
    /// Unlike a loop over [`Sampler::sample`], the evaluation context (memo
    /// table and its allocation) is created once and re-seeded per draw —
    /// the sample stream is bitwise identical, without `n` context
    /// allocations.
    pub fn samples<T: Value>(&mut self, u: &Uncertain<T>, n: usize) -> Vec<T> {
        let mut ctx = SampleContext::from_seed(0);
        (0..n)
            .map(|_| {
                self.joint_samples += 1;
                ctx.reseed(self.rng.gen());
                ctx.begin_joint_sample();
                u.node().sample_value(&mut ctx)
            })
            .collect()
    }

    /// Draws one joint sample through a compiled [`Plan`], consuming one
    /// seed from this sampler's stream — the per-sample seeding is bitwise
    /// identical to [`Sampler::sample`], so swapping the tree-walk for a
    /// plan does not move any seeded experiment.
    pub(crate) fn sample_planned<T: Value>(
        &mut self,
        plan: &Plan<T>,
        ctx: &mut SampleContext,
    ) -> T {
        self.joint_samples += 1;
        ctx.reseed(self.rng.gen());
        plan.evaluate(ctx)
    }

    /// Total joint samples drawn through this sampler so far.
    pub fn joint_samples(&self) -> u64 {
        self.joint_samples
    }

    /// Resets the joint-sample counter (the RNG stream is unaffected).
    pub fn reset_counter(&mut self) {
        self.joint_samples = 0;
    }

    /// Direct access to the underlying RNG, for code that mixes raw draws
    /// with network sampling (e.g. workload generators).
    pub fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_samplers_are_reproducible() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut a = Sampler::seeded(99);
        let mut b = Sampler::seeded(99);
        assert_eq!(a.samples(&x, 20), b.samples(&x, 20));
    }

    #[test]
    fn different_seeds_differ() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut a = Sampler::seeded(1);
        let mut b = Sampler::seeded(2);
        assert_ne!(a.samples(&x, 5), b.samples(&x, 5));
    }

    #[test]
    fn joint_samples_are_independent_across_calls() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Sampler::seeded(3);
        let a = s.sample(&x);
        let b = s.sample(&x);
        assert_ne!(a, b, "separate joint samples must redraw the leaves");
    }

    #[test]
    fn samples_matches_a_loop_of_sample() {
        // The context-reuse fast path must not perturb the stream.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let shared = &x * &x - &x;
        let mut a = Sampler::seeded(17);
        let batch = a.samples(&shared, 25);
        let mut b = Sampler::seeded(17);
        let looped: Vec<f64> = (0..25).map(|_| b.sample(&shared)).collect();
        assert_eq!(batch, looped);
        assert_eq!(a.joint_samples(), b.joint_samples());
    }

    #[test]
    fn sample_planned_matches_sample() {
        let x = Uncertain::uniform(0.0, 1.0).unwrap();
        let expr = (&x + &x).gt(0.7);
        let mut a = Sampler::seeded(23);
        let tree: Vec<bool> = (0..40).map(|_| a.sample(&expr)).collect();
        let mut b = Sampler::seeded(23);
        let plan = Plan::compile(&expr);
        let mut ctx = plan.new_context();
        let planned: Vec<bool> = (0..40).map(|_| b.sample_planned(&plan, &mut ctx)).collect();
        assert_eq!(tree, planned);
        assert_eq!(b.joint_samples(), 40);
    }

    #[test]
    fn counter_counts_and_resets() {
        let x = Uncertain::point(1.0);
        let mut s = Sampler::seeded(0);
        let _ = s.samples(&x, 7);
        assert_eq!(s.joint_samples(), 7);
        s.reset_counter();
        assert_eq!(s.joint_samples(), 0);
    }
}
