//! The legacy joint-sample driver, now a thin wrapper over [`Session`].
//!
//! [`Sampler`] predates the session runtime; it remains as the
//! compatibility surface for seeded experiments whose recorded numbers
//! must not move. Internally every `Sampler` is a single-threaded
//! [`Session`] in *sequential* seeding mode ([`Session::sequential`]):
//! one shared `StdRng`, one `u64` drawn per joint sample, in call order —
//! the exact stream the pre-runtime implementation drew — so `Sampler`
//! results are bitwise identical to every prior release while
//! transparently gaining the session's plan cache.
//!
//! New code should construct a [`Session`] directly; [`Sampler::session`]
//! / [`Sampler::session_mut`] are the in-place migration path.

#[cfg(test)]
use crate::context::SampleContext;
#[cfg(test)]
use crate::plan::Plan;
use crate::runtime::Session;
use crate::uncertain::{Uncertain, Value};
use rand::RngCore;

/// Draws joint samples from `Uncertain<T>` networks.
///
/// Each call to [`Sampler::sample`] performs one *joint sample*: the
/// network is evaluated once by ancestral sampling (leaves first, shared
/// nodes drawn exactly once) and the root value is returned (paper §4.2).
/// The sampler also counts joint samples, which is how the evaluation
/// harness reports "samples per cell update" (paper Fig. 14b).
///
/// This type is a compatibility wrapper over a single-threaded
/// [`Session`]; see the module docs for the migration story.
///
/// # Examples
///
/// ```
/// use uncertain_core::{Sampler, Uncertain};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Uncertain::normal(1.0, 0.5)?;
/// let mut s = Sampler::seeded(11);
/// let values = s.samples(&x, 100);
/// assert_eq!(values.len(), 100);
/// assert_eq!(s.joint_samples(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sampler {
    session: Session,
}

impl Sampler {
    /// Creates a sampler seeded from OS entropy.
    pub fn new() -> Self {
        Self {
            session: Session::sequential_from_entropy(),
        }
    }

    /// Creates a deterministic sampler — same seed, same sample stream.
    /// Every experiment in this repository is driven through seeded
    /// samplers so the paper's figures regenerate exactly.
    pub fn seeded(seed: u64) -> Self {
        Self {
            session: Session::sequential(seed),
        }
    }

    /// The underlying session (cache statistics, configuration).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying session — the migration path from
    /// `Sampler`-based call sites to the [`Session`] API.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Draws one joint sample of the network rooted at `u`.
    pub fn sample<T: Value>(&mut self, u: &Uncertain<T>) -> T {
        self.session.sample(u)
    }

    /// Draws `n` joint samples into a `Vec`.
    ///
    /// Unlike a loop over [`Sampler::sample`], the evaluation context (memo
    /// table and its allocation) is created once and re-seeded per draw —
    /// the sample stream is bitwise identical, without `n` context
    /// allocations.
    pub fn samples<T: Value>(&mut self, u: &Uncertain<T>, n: usize) -> Vec<T> {
        self.session.samples(u, n)
    }

    /// Draws one joint sample through a compiled [`Plan`], consuming one
    /// seed from this sampler's stream — the per-sample seeding is bitwise
    /// identical to [`Sampler::sample`], so swapping the tree-walk for a
    /// plan does not move any seeded experiment. Production call sites now
    /// route through [`Session`]; the stream-equivalence tests keep driving
    /// this legacy protocol directly.
    #[cfg(test)]
    pub(crate) fn sample_planned<T: Value>(
        &mut self,
        plan: &Plan<T>,
        ctx: &mut SampleContext,
    ) -> T {
        self.session.count_joint_samples(1);
        ctx.reseed(self.session.next_stream_seed());
        plan.evaluate(ctx)
    }

    /// Total joint samples drawn through this sampler so far.
    pub fn joint_samples(&self) -> u64 {
        self.session.joint_samples()
    }

    /// Resets the joint-sample counter (the RNG stream is unaffected).
    pub fn reset_counter(&mut self) {
        self.session.reset_joint_samples();
    }

    /// Direct access to the underlying RNG, for code that mixes raw draws
    /// with network sampling (e.g. workload generators).
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.session.rng()
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn seeded_samplers_are_reproducible() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut a = Sampler::seeded(99);
        let mut b = Sampler::seeded(99);
        assert_eq!(a.samples(&x, 20), b.samples(&x, 20));
    }

    #[test]
    fn different_seeds_differ() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut a = Sampler::seeded(1);
        let mut b = Sampler::seeded(2);
        assert_ne!(a.samples(&x, 5), b.samples(&x, 5));
    }

    #[test]
    fn joint_samples_are_independent_across_calls() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Sampler::seeded(3);
        let a = s.sample(&x);
        let b = s.sample(&x);
        assert_ne!(a, b, "separate joint samples must redraw the leaves");
    }

    #[test]
    fn samples_matches_a_loop_of_sample() {
        // The context-reuse fast path must not perturb the stream.
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let shared = &x * &x - &x;
        let mut a = Sampler::seeded(17);
        let batch = a.samples(&shared, 25);
        let mut b = Sampler::seeded(17);
        let looped: Vec<f64> = (0..25).map(|_| b.sample(&shared)).collect();
        assert_eq!(batch, looped);
        assert_eq!(a.joint_samples(), b.joint_samples());
    }

    #[test]
    fn sample_planned_matches_sample() {
        let x = Uncertain::uniform(0.0, 1.0).unwrap();
        let expr = (&x + &x).gt(0.7);
        let mut a = Sampler::seeded(23);
        let tree: Vec<bool> = (0..40).map(|_| a.sample(&expr)).collect();
        let mut b = Sampler::seeded(23);
        let plan = Plan::compile(&expr);
        let mut ctx = plan.new_context();
        let planned: Vec<bool> = (0..40).map(|_| b.sample_planned(&plan, &mut ctx)).collect();
        assert_eq!(tree, planned);
        assert_eq!(b.joint_samples(), 40);
    }

    #[test]
    fn wrapper_preserves_the_legacy_seed_stream() {
        // The compatibility contract of the whole module: Sampler::seeded(s)
        // must draw exactly the stream the pre-session implementation drew
        // (one u64 per joint sample from StdRng::seed_from_u64(s), fresh
        // tree-walk context each).
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let expr = (&x + &x) * &x;
        let mut s = Sampler::seeded(424242);
        let via_wrapper = s.samples(&expr, 30);
        let mut rng = StdRng::seed_from_u64(424242);
        let legacy: Vec<f64> = (0..30)
            .map(|_| {
                let mut ctx = SampleContext::from_seed(rng.gen());
                expr.node().sample_value(&mut ctx)
            })
            .collect();
        assert_eq!(via_wrapper, legacy);
    }

    #[test]
    fn wrapper_exposes_session_cache() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let mut s = Sampler::seeded(5);
        let _ = s.samples(&x, 10);
        let _ = s.samples(&x, 10);
        let stats = s.session().cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn counter_counts_and_resets() {
        let x = Uncertain::point(1.0);
        let mut s = Sampler::seeded(0);
        let _ = s.samples(&x, 7);
        assert_eq!(s.joint_samples(), 7);
        s.reset_counter();
        assert_eq!(s.joint_samples(), 0);
    }
}
