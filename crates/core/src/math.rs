//! Convenience combinators: lifted `f64` math, aggregation, and selection.
//!
//! Everything here is sugar over [`Uncertain::map`]/[`Uncertain::map2`] —
//! each call adds one inner node to the Bayesian network, preserving the
//! shared-dependence semantics of the underlying graph.

use crate::kernel::{BinOp, Map2Tag, MapTag, UnOp};
use crate::uncertain::{Uncertain, Value};

impl Uncertain<f64> {
    /// Lifted absolute value.
    pub fn abs(&self) -> Uncertain<f64> {
        self.map_tagged("abs", Some(MapTag::F64(UnOp::Abs)), f64::abs)
    }

    /// Lifted square root (`NaN` for negative samples, as in `f64::sqrt`).
    pub fn sqrt(&self) -> Uncertain<f64> {
        self.map_tagged("sqrt", Some(MapTag::F64(UnOp::Sqrt)), f64::sqrt)
    }

    /// Lifted exponential.
    pub fn exp(&self) -> Uncertain<f64> {
        self.map_tagged("exp", Some(MapTag::F64(UnOp::Exp)), f64::exp)
    }

    /// Lifted natural logarithm (`NaN`/`-∞` outside the domain, as in
    /// `f64::ln`).
    pub fn ln(&self) -> Uncertain<f64> {
        self.map_tagged("ln", Some(MapTag::F64(UnOp::Ln)), f64::ln)
    }

    /// Lifted sine (radians).
    pub fn sin(&self) -> Uncertain<f64> {
        self.map_tagged("sin", Some(MapTag::F64(UnOp::Sin)), f64::sin)
    }

    /// Lifted cosine (radians).
    pub fn cos(&self) -> Uncertain<f64> {
        self.map_tagged("cos", Some(MapTag::F64(UnOp::Cos)), f64::cos)
    }

    /// Lifted arcsine (`NaN` outside `[-1, 1]`, as in `f64::asin`).
    pub fn asin(&self) -> Uncertain<f64> {
        self.map_tagged("asin", Some(MapTag::F64(UnOp::Asin)), f64::asin)
    }

    /// Lifted arctangent.
    pub fn atan(&self) -> Uncertain<f64> {
        self.map_tagged("atan", Some(MapTag::F64(UnOp::Atan)), f64::atan)
    }

    /// Lifted four-quadrant arctangent: per-sample `self.atan2(other)`.
    pub fn atan2(&self, other: &Uncertain<f64>) -> Uncertain<f64> {
        self.map2_tagged("atan2", other, Some(Map2Tag::F64(BinOp::Atan2)), f64::atan2)
    }

    /// Lifted degrees → radians conversion.
    pub fn to_radians(&self) -> Uncertain<f64> {
        self.map_tagged(
            "to_radians",
            Some(MapTag::F64(UnOp::ToRadians)),
            f64::to_radians,
        )
    }

    /// Lifted radians → degrees conversion.
    pub fn to_degrees(&self) -> Uncertain<f64> {
        self.map_tagged(
            "to_degrees",
            Some(MapTag::F64(UnOp::ToDegrees)),
            f64::to_degrees,
        )
    }

    /// Lifted integer power.
    pub fn powi(&self, n: i32) -> Uncertain<f64> {
        self.map_tagged("powi", Some(MapTag::F64(UnOp::PowiK(n))), move |v: f64| {
            v.powi(n)
        })
    }

    /// Lifted float power.
    pub fn powf(&self, p: f64) -> Uncertain<f64> {
        self.map_tagged("powf", Some(MapTag::F64(UnOp::PowfK(p))), move |v: f64| {
            v.powf(p)
        })
    }

    /// Lifted clamp to `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics at sampling time if `low > high` (the contract of
    /// `f64::clamp`).
    pub fn clamp(&self, low: f64, high: f64) -> Uncertain<f64> {
        self.map_tagged(
            "clamp",
            Some(MapTag::F64(UnOp::ClampK(low, high))),
            move |v: f64| v.clamp(low, high),
        )
    }

    /// Per-sample maximum of two uncertain values.
    pub fn max_u(&self, other: &Uncertain<f64>) -> Uncertain<f64> {
        self.map2_tagged("max", other, Some(Map2Tag::F64(BinOp::Max)), f64::max)
    }

    /// Per-sample minimum of two uncertain values.
    pub fn min_u(&self, other: &Uncertain<f64>) -> Uncertain<f64> {
        self.map2_tagged("min", other, Some(Map2Tag::F64(BinOp::Min)), f64::min)
    }

    /// Sums an iterator of uncertain values into one network node chain.
    ///
    /// Shared variables stay correlated: summing the same variable twice
    /// doubles it, exactly. An empty iterator yields a point mass at 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let sensors: Vec<_> = (0..8)
    ///     .map(|_| Uncertain::normal(1.0, 0.1))
    ///     .collect::<Result<_, _>>()?;
    /// let total = Uncertain::sum(sensors.iter().cloned());
    /// let mut s = Session::seeded(0);
    /// assert!((total.expected_value_in(&mut s, 2000) - 8.0).abs() < 0.05);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sum(values: impl IntoIterator<Item = Uncertain<f64>>) -> Uncertain<f64> {
        values
            .into_iter()
            .fold(Uncertain::point(0.0), |acc, v| acc + v)
    }

    /// The per-sample arithmetic mean of a collection of uncertain values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn mean_of(values: &[Uncertain<f64>]) -> Uncertain<f64> {
        assert!(!values.is_empty(), "mean of an empty collection");
        let n = values.len() as f64;
        Uncertain::sum(values.iter().cloned()) / n
    }
}

impl std::iter::Sum for Uncertain<f64> {
    fn sum<I: Iterator<Item = Uncertain<f64>>>(iter: I) -> Self {
        Uncertain::sum(iter)
    }
}

impl<T: Value> Uncertain<T> {
    /// Gathers a collection of uncertain values into one uncertain
    /// collection, sampled jointly (shared ancestry stays correlated).
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let x = Uncertain::normal(0.0, 1.0)?;
    /// let copies = Uncertain::sequence(vec![x.clone(), x.clone(), x]);
    /// let mut s = Session::seeded(1);
    /// let v = s.sample(&copies);
    /// assert_eq!(v[0], v[1]);
    /// assert_eq!(v[1], v[2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sequence(values: Vec<Uncertain<T>>) -> Uncertain<Vec<T>> {
        let empty: Uncertain<Vec<T>> = Uncertain::from_fn("[]", |_| Vec::new());
        values.into_iter().fold(empty, |acc, v| {
            acc.map2("push", &v, |mut list: Vec<T>, item| {
                list.push(item);
                list
            })
        })
    }
}

impl Uncertain<bool> {
    /// Per-sample selection (an uncertain conditional *expression*):
    /// where this Bernoulli samples `true`, take `if_true`'s joint sample,
    /// otherwise `if_false`'s.
    ///
    /// Unlike an `if` statement decided by a hypothesis test, `select`
    /// keeps **both** branches alive as distributions — this is the
    /// probabilistic mixture, not a branch decision.
    ///
    /// # Examples
    ///
    /// ```
    /// use uncertain_core::{Session, Uncertain};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let rainy = Uncertain::bernoulli(0.3)?;
    /// let commute = rainy.select(
    ///     &Uncertain::normal(40.0, 5.0)?, // rainy-day minutes
    ///     &Uncertain::normal(25.0, 3.0)?, // dry-day minutes
    /// );
    /// let mut s = Session::seeded(2);
    /// let e = commute.expected_value_in(&mut s, 4000);
    /// assert!((e - (0.3 * 40.0 + 0.7 * 25.0)).abs() < 0.5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn select<T: Value>(
        &self,
        if_true: &Uncertain<T>,
        if_false: &Uncertain<T>,
    ) -> Uncertain<T> {
        let branches = if_true.zip(if_false);
        self.map2("select", &branches, |cond, (t, f)| if cond { t } else { f })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    #[test]
    fn pointwise_math_on_point_masses() {
        let x = Uncertain::point(-4.0);
        let mut s = Session::sequential(0);
        assert_eq!(s.sample(&x.abs()), 4.0);
        assert_eq!(s.sample(&x.abs().sqrt()), 2.0);
        assert_eq!(s.sample(&x.powi(2)), 16.0);
        assert_eq!(s.sample(&x.clamp(-1.0, 1.0)), -1.0);
        assert_eq!(s.sample(&Uncertain::point(0.0).exp()), 1.0);
        assert_eq!(s.sample(&Uncertain::point(1.0).ln()), 0.0);
        assert_eq!(s.sample(&x.abs().powf(0.5)), 2.0);
    }

    #[test]
    fn max_min_track_joint_samples() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let shifted = &x + 1.0;
        let hi = x.max_u(&shifted);
        let lo = x.min_u(&shifted);
        let mut s = Session::sequential(1);
        // shifted is always larger than x in the same joint sample.
        for _ in 0..100 {
            let (h, l) = s.sample(&hi.zip(&lo));
            assert!((h - l - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_of_shared_variable_doubles() {
        let x = Uncertain::normal(0.0, 1.0).unwrap();
        let twice = Uncertain::sum([x.clone(), x.clone()]);
        let consistent = twice.eq_exact(&(&x * 2.0));
        let mut s = Session::sequential(2);
        for _ in 0..100 {
            assert!(s.sample(&consistent));
        }
    }

    #[test]
    fn empty_sum_is_zero() {
        let zero = Uncertain::sum(std::iter::empty());
        let mut s = Session::sequential(3);
        assert_eq!(s.sample(&zero), 0.0);
    }

    #[test]
    fn iterator_sum_works() {
        let parts: Vec<Uncertain<f64>> = (1..=4).map(|i| Uncertain::point(i as f64)).collect();
        let total: Uncertain<f64> = parts.into_iter().sum();
        let mut s = Session::sequential(4);
        assert_eq!(s.sample(&total), 10.0);
    }

    #[test]
    fn mean_of_reduces_variance() {
        let sensors: Vec<Uncertain<f64>> = (0..16)
            .map(|_| Uncertain::normal(5.0, 2.0).unwrap())
            .collect();
        let averaged = Uncertain::mean_of(&sensors);
        let mut s = Session::sequential(5);
        let stats = averaged.stats_in(&mut s, 8000).unwrap();
        // σ/√16 = 0.5.
        assert!((stats.std_dev() - 0.5).abs() < 0.05, "{}", stats.std_dev());
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn mean_of_empty_panics() {
        let _ = Uncertain::mean_of(&[]);
    }

    #[test]
    fn sequence_preserves_order_and_length() {
        let vals = vec![
            Uncertain::point(1),
            Uncertain::point(2),
            Uncertain::point(3),
        ];
        let seq = Uncertain::sequence(vals);
        let mut s = Session::sequential(6);
        assert_eq!(s.sample(&seq), vec![1, 2, 3]);
    }

    #[test]
    fn select_mixture_probabilities() {
        let coin = Uncertain::bernoulli(0.25).unwrap();
        let mixed = coin.select(&Uncertain::point(1.0), &Uncertain::point(0.0));
        let mut s = Session::sequential(7);
        let e = mixed.expected_value_in(&mut s, 20_000);
        assert!((e - 0.25).abs() < 0.01, "e={e}");
    }

    #[test]
    fn select_correlates_with_condition() {
        // Using the same condition twice stays consistent per sample.
        let cond = Uncertain::bernoulli(0.5).unwrap();
        let a = cond.select(&Uncertain::point(1), &Uncertain::point(0));
        let b = cond.select(&Uncertain::point(10), &Uncertain::point(0));
        let pair = a.zip(&b);
        let mut s = Session::sequential(8);
        for _ in 0..100 {
            let (x, y) = s.sample(&pair);
            assert!(
                (x == 1 && y == 10) || (x == 0 && y == 0),
                "branches must agree: {x}, {y}"
            );
        }
    }
}
