//! Property tests for the columnar batch kernel: over random networks —
//! shared subexpressions, scalar ops, comparisons, boolean logic, and
//! Bernoulli priors — the kernel path must reproduce the closure path
//! **bitwise**: identical sample streams (compared through `f64::to_bits`,
//! so NaN propagation must match too), identical SPRT decisions, across
//! batch splits, chunk boundaries, and worker thread counts.

use proptest::prelude::*;
use uncertain_core::stats::{SequentialTest, TestDecision};
use uncertain_core::{EvalConfig, Evaluator, ParSampler, Session, Uncertain};

/// A generatable f64 expression shape. Built fresh into an
/// [`Uncertain<f64>`] once per case; the same network object is then
/// handed to both evaluation paths, so leaves line up by construction.
#[derive(Debug, Clone)]
enum FExpr {
    Normal {
        mean: f64,
        sd: f64,
    },
    Uniform {
        lo: f64,
        width: f64,
    },
    Point(f64),
    Neg(Box<FExpr>),
    Sqrt(Box<FExpr>),
    Sin(Box<FExpr>),
    AddK(Box<FExpr>, f64),
    MulK(Box<FExpr>, f64),
    Add(Box<FExpr>, Box<FExpr>),
    Sub(Box<FExpr>, Box<FExpr>),
    Mul(Box<FExpr>, Box<FExpr>),
    /// `&u + &u * 0.5`: forces a genuinely shared subexpression, so the
    /// tape must evaluate `u`'s register once and read it twice.
    SelfDup(Box<FExpr>),
}

fn build_f(e: &FExpr) -> Uncertain<f64> {
    match e {
        FExpr::Normal { mean, sd } => Uncertain::normal(*mean, *sd).unwrap(),
        FExpr::Uniform { lo, width } => Uncertain::uniform(*lo, lo + width).unwrap(),
        FExpr::Point(v) => Uncertain::point(*v),
        FExpr::Neg(a) => -build_f(a),
        // May go NaN for negative inputs — that is the point: both paths
        // must propagate the same bits.
        FExpr::Sqrt(a) => build_f(a).sqrt(),
        FExpr::Sin(a) => build_f(a).sin(),
        FExpr::AddK(a, k) => build_f(a) + *k,
        FExpr::MulK(a, k) => build_f(a) * *k,
        FExpr::Add(a, b) => build_f(a) + build_f(b),
        FExpr::Sub(a, b) => build_f(a) - build_f(b),
        FExpr::Mul(a, b) => build_f(a) * build_f(b),
        FExpr::SelfDup(a) => {
            let u = build_f(a);
            &u + &u * 0.5
        }
    }
}

fn f_expr() -> impl Strategy<Value = FExpr> {
    let leaf = prop_oneof![
        (-5.0..5.0, 0.1..3.0).prop_map(|(mean, sd)| FExpr::Normal { mean, sd }),
        (-5.0..5.0, 0.1..5.0).prop_map(|(lo, width)| FExpr::Uniform { lo, width }),
        (-5.0..5.0).prop_map(FExpr::Point),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| FExpr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| FExpr::Sqrt(Box::new(a))),
            inner.clone().prop_map(|a| FExpr::Sin(Box::new(a))),
            (inner.clone(), -3.0..3.0).prop_map(|(a, k)| FExpr::AddK(Box::new(a), k)),
            (inner.clone(), -3.0..3.0).prop_map(|(a, k)| FExpr::MulK(Box::new(a), k)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| FExpr::SelfDup(Box::new(a))),
        ]
    })
}

/// A generatable boolean network: comparisons over f64 subnetworks,
/// Bernoulli priors, and the lifted logic operators.
#[derive(Debug, Clone)]
enum BExpr {
    Gt(FExpr, f64),
    Lt(FExpr, f64),
    Ge2(FExpr, FExpr),
    Coin(f64),
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
    Xor(Box<BExpr>, Box<BExpr>),
    Not(Box<BExpr>),
}

fn build_b(e: &BExpr) -> Uncertain<bool> {
    match e {
        BExpr::Gt(a, t) => build_f(a).gt(*t),
        BExpr::Lt(a, t) => build_f(a).lt(*t),
        BExpr::Ge2(a, b) => build_f(a).ge(build_f(b)),
        BExpr::Coin(p) => Uncertain::bernoulli(*p).unwrap(),
        BExpr::And(a, b) => build_b(a) & build_b(b),
        BExpr::Or(a, b) => build_b(a) | build_b(b),
        BExpr::Xor(a, b) => build_b(a) ^ build_b(b),
        BExpr::Not(a) => !build_b(a),
    }
}

fn b_expr() -> impl Strategy<Value = BExpr> {
    let leaf = prop_oneof![
        (f_expr(), -4.0..4.0).prop_map(|(a, t)| BExpr::Gt(a, t)),
        (f_expr(), -4.0..4.0).prop_map(|(a, t)| BExpr::Lt(a, t)),
        (f_expr(), f_expr()).prop_map(|(a, b)| BExpr::Ge2(a, b)),
        (0.05..0.95).prop_map(BExpr::Coin),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExpr::Xor(Box::new(a), Box::new(b))),
            inner.prop_map(|a| BExpr::Not(Box::new(a))),
        ]
    })
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The kernel's f64 sample stream is bitwise identical to the closure
    /// path's, and splitting the kernel's draws across two batch calls
    /// (exercising the batch cursor) cannot move the stream.
    #[test]
    fn kernel_f64_stream_is_bitwise_identical_to_closure(
        expr in f_expr(),
        n1 in 1usize..200,
        n2 in 1usize..200,
        seed in 0u64..10_000,
    ) {
        let net = build_f(&expr);
        let mut closure = ParSampler::with_threads(&net, seed, 1);
        let reference = closure.sample_batch(n1 + n2);

        let mut eval = Evaluator::new(&net, seed);
        let mut got = eval.sample_batch(n1);
        got.extend(eval.sample_batch(n2));

        prop_assert_eq!(bits(&reference), bits(&got));
    }

    /// Same statement for boolean networks: comparisons, priors, and the
    /// lifted logic operators agree draw for draw.
    #[test]
    fn kernel_bool_stream_is_identical_to_closure(
        expr in b_expr(),
        n in 1usize..400,
        seed in 0u64..10_000,
    ) {
        let net = build_b(&expr);
        let reference = ParSampler::with_threads(&net, seed, 1).sample_batch(n);
        let got = Evaluator::new(&net, seed).sample_batch(n);
        prop_assert_eq!(reference, got);
    }

    /// The kernel-backed SPRT reaches the exact decision the closure path
    /// reaches: same sample count, same (bitwise) estimate, same verdict.
    #[test]
    fn kernel_sprt_decisions_match_closure_decisions(
        expr in b_expr(),
        threshold in 0.1f64..0.9,
        seed in 0u64..10_000,
    ) {
        let net = build_b(&expr);
        let cfg = EvalConfig::default();

        let outcome = Evaluator::new(&net, seed).try_decide(&cfg, threshold).unwrap();

        let mut closure = ParSampler::with_threads(&net, seed, 1);
        let test = SequentialTest::with_params(
            threshold, cfg.delta, cfg.alpha, cfg.beta, cfg.batch, cfg.max_samples,
        ).unwrap();
        let reference = test.run_batched(|k| closure.sample_batch(k));

        prop_assert_eq!(outcome.samples, reference.samples);
        prop_assert_eq!(outcome.estimate.to_bits(), reference.estimate.to_bits());
        prop_assert_eq!(
            outcome.accepted,
            reference.decision == TestDecision::AcceptAlternative
        );
        prop_assert_eq!(outcome.conclusive, reference.conclusive);
    }
}

proptest! {
    // These cases draw thousands of samples each; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch draws that straddle the kernel's internal 4096-sample chunk
    /// boundary — sliced into uneven batch calls — still reproduce the
    /// closure stream exactly.
    #[test]
    fn chunk_boundary_slicing_cannot_move_the_stream(
        expr in f_expr(),
        cut in 1usize..4096,
        seed in 0u64..1000,
    ) {
        let n = 4096 + 513;
        let net = build_f(&expr);
        let reference = ParSampler::with_threads(&net, seed, 1).sample_batch(n);

        let mut eval = Evaluator::new(&net, seed);
        let mut got = eval.sample_batch(cut);
        got.extend(eval.sample_batch(n - cut));

        prop_assert_eq!(bits(&reference), bits(&got));
    }

    /// Session batch draws through the kernel are thread-count invariant:
    /// one worker (serial columnar loop) and eight workers (sharded
    /// kernel) produce the same bits, for f64 and bool roots alike.
    #[test]
    fn kernel_sharding_is_thread_count_invariant(
        fexpr in f_expr(),
        bexpr in b_expr(),
        seed in 0u64..1000,
    ) {
        // Past the parallel cutover (≥1024), so 8 workers really shard.
        let n = 1500;
        let fnet = build_f(&fexpr);
        let serial = Session::seeded(seed).with_threads(1).samples(&fnet, n);
        let sharded = Session::seeded(seed).with_threads(8).samples(&fnet, n);
        prop_assert_eq!(bits(&serial), bits(&sharded));

        let bnet = build_b(&bexpr);
        let serial = Session::seeded(seed).with_threads(1).samples(&bnet, n);
        let sharded = Session::seeded(seed).with_threads(8).samples(&bnet, n);
        prop_assert_eq!(serial, sharded);
    }
}

// ---------------------------------------------------------------------------
// Scalar vs. vectorized leaf fills
// ---------------------------------------------------------------------------
//
// `Uncertain::from_distribution` tags its leaf with the distribution's
// batched `fill_column` pass, so the kernel fills whole columns at once;
// `Uncertain::from_fn` over the *same* distribution object is an opaque
// closure the kernel must fall back to per-element scalar sampling for.
// The `fill_column` contract says both are bitwise interchangeable — these
// properties enforce it through the public API, across chunk boundaries,
// odd batch sizes, and worker thread counts.

use std::sync::Arc;
use uncertain_core::dist::{Bernoulli, Exponential, Gaussian, Rayleigh, Uniform};
use uncertain_core::prelude::Distribution;

/// A distribution with a hand-vectorized `fill_column` path, buildable as
/// either a tagged (vectorized) or closure (scalar-fallback) leaf.
#[derive(Debug, Clone, Copy)]
enum VecDist {
    Gaussian { mean: f64, sd: f64 },
    Exponential { rate: f64 },
    Rayleigh { scale: f64 },
    Uniform { lo: f64, width: f64 },
}

impl VecDist {
    /// The tagged leaf: kernel batches run the vectorized column fill.
    fn vectorized(self) -> Uncertain<f64> {
        match self {
            VecDist::Gaussian { mean, sd } => {
                Uncertain::from_distribution(Gaussian::new(mean, sd).unwrap())
            }
            VecDist::Exponential { rate } => {
                Uncertain::from_distribution(Exponential::new(rate).unwrap())
            }
            VecDist::Rayleigh { scale } => {
                Uncertain::from_distribution(Rayleigh::new(scale).unwrap())
            }
            VecDist::Uniform { lo, width } => {
                Uncertain::from_distribution(Uniform::new(lo, lo + width).unwrap())
            }
        }
    }

    /// The closure leaf over the same distribution: the kernel sees an
    /// opaque sampling function and falls back to one scalar draw per row.
    fn scalar(self) -> Uncertain<f64> {
        match self {
            VecDist::Gaussian { mean, sd } => {
                let d = Arc::new(Gaussian::new(mean, sd).unwrap());
                Uncertain::from_fn("scalar gaussian", move |rng| d.sample(rng))
            }
            VecDist::Exponential { rate } => {
                let d = Arc::new(Exponential::new(rate).unwrap());
                Uncertain::from_fn("scalar exponential", move |rng| d.sample(rng))
            }
            VecDist::Rayleigh { scale } => {
                let d = Arc::new(Rayleigh::new(scale).unwrap());
                Uncertain::from_fn("scalar rayleigh", move |rng| d.sample(rng))
            }
            VecDist::Uniform { lo, width } => {
                let d = Arc::new(Uniform::new(lo, lo + width).unwrap());
                Uncertain::from_fn("scalar uniform", move |rng| d.sample(rng))
            }
        }
    }
}

fn vec_dist() -> impl Strategy<Value = VecDist> {
    prop_oneof![
        (-5.0..5.0, 0.1..3.0).prop_map(|(mean, sd)| VecDist::Gaussian { mean, sd }),
        (0.05..4.0).prop_map(|rate| VecDist::Exponential { rate }),
        (0.1..5.0).prop_map(|scale| VecDist::Rayleigh { scale }),
        (-5.0..5.0, 0.1..5.0).prop_map(|(lo, width)| VecDist::Uniform { lo, width }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The vectorized column fill produces the exact bits the scalar
    /// per-row fallback produces, at odd batch sizes and across uneven
    /// batch splits.
    #[test]
    fn vectorized_leaf_fill_is_bitwise_identical_to_scalar(
        dist in vec_dist(),
        n1 in 1usize..300,
        n2 in 1usize..300,
        seed in 0u64..10_000,
    ) {
        let mut scalar = Evaluator::new(&dist.scalar(), seed);
        let mut reference = scalar.sample_batch(n1);
        reference.extend(scalar.sample_batch(n2));

        let mut vectorized = Evaluator::new(&dist.vectorized(), seed);
        let mut got = vectorized.sample_batch(n1);
        got.extend(vectorized.sample_batch(n2));

        prop_assert_eq!(bits(&reference), bits(&got));
    }

    /// Same statement for the Bernoulli bool column.
    #[test]
    fn vectorized_bernoulli_fill_matches_scalar(
        p in 0.05f64..0.95,
        n in 1usize..500,
        seed in 0u64..10_000,
    ) {
        let d = Arc::new(Bernoulli::new(p).unwrap());
        let scalar = Uncertain::from_fn("scalar coin", move |rng| d.sample(rng));
        let vectorized = Uncertain::from_distribution(Bernoulli::new(p).unwrap());
        let reference = Evaluator::new(&scalar, seed).sample_batch(n);
        let got = Evaluator::new(&vectorized, seed).sample_batch(n);
        prop_assert_eq!(reference, got);
    }

    /// An SPRT decision over a vectorized leaf is identical — verdict,
    /// sample count, and bitwise estimate — to the scalar-leaf decision.
    #[test]
    fn vectorized_leaf_sprt_decisions_match_scalar(
        dist in vec_dist(),
        threshold in 0.1f64..0.9,
        cut in -1.0f64..2.0,
        seed in 0u64..10_000,
    ) {
        let cfg = EvalConfig::default();
        let scalar = Evaluator::new(&dist.scalar().gt(cut), seed)
            .try_decide(&cfg, threshold).unwrap();
        let vectorized = Evaluator::new(&dist.vectorized().gt(cut), seed)
            .try_decide(&cfg, threshold).unwrap();
        prop_assert_eq!(scalar.samples, vectorized.samples);
        prop_assert_eq!(scalar.estimate.to_bits(), vectorized.estimate.to_bits());
        prop_assert_eq!(scalar.accepted, vectorized.accepted);
        prop_assert_eq!(scalar.conclusive, vectorized.conclusive);
    }
}

proptest! {
    // Chunk-straddling cases draw ~4.6k samples each; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Vectorized fills that straddle the kernel's 4096-row chunk
    /// boundary — with the draw split at an arbitrary point — cannot
    /// diverge from the scalar stream.
    #[test]
    fn vectorized_fill_survives_chunk_boundaries(
        dist in vec_dist(),
        cut in 1usize..4096,
        seed in 0u64..1000,
    ) {
        let n = 4096 + 513;
        let reference = Evaluator::new(&dist.scalar(), seed).sample_batch(n);
        let mut eval = Evaluator::new(&dist.vectorized(), seed);
        let mut got = eval.sample_batch(cut);
        got.extend(eval.sample_batch(n - cut));
        prop_assert_eq!(bits(&reference), bits(&got));
    }

    /// Thread-count invariance holds for vectorized leaves: one worker
    /// and eight workers shard to the same bits, and both equal the
    /// scalar closure leaf's stream.
    #[test]
    fn vectorized_fill_is_thread_count_invariant(
        dist in vec_dist(),
        seed in 0u64..1000,
    ) {
        let n = 1500; // past the parallel cutover, so 8 workers shard
        let net = dist.vectorized();
        let serial = Session::seeded(seed).with_threads(1).samples(&net, n);
        let sharded = Session::seeded(seed).with_threads(8).samples(&net, n);
        prop_assert_eq!(bits(&serial), bits(&sharded));
        let scalar = Session::seeded(seed).with_threads(8).samples(&dist.scalar(), n);
        prop_assert_eq!(bits(&serial), bits(&scalar));
    }
}
