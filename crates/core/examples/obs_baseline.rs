//! The hooks-free baseline for the observability overhead benchmark.
//!
//! `bench_obs` (in `uncertain-bench`) measures the decision hot path with
//! the `obs` hooks compiled in; this example measures the identical
//! workload with the hooks compiled *out*. It lives here, not in the
//! bench crate, because feature unification would otherwise re-enable
//! `obs` through `uncertain-serve`: a true no-hooks binary can only be
//! built from `uncertain-core` alone. Run as
//!
//! ```text
//! cargo run --release -p uncertain-core --no-default-features --example obs_baseline
//! ```
//!
//! which appends one `{"mode":"no_hooks", ...}` line to `BENCH_obs.json`
//! for `bench_obs` to read back. Running it with `obs` enabled is refused
//! rather than silently recorded as a baseline.

use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use uncertain_core::{Session, Uncertain};

// The workload must stay line-for-line identical to `bench_obs`'s copy in
// crates/bench/src/bin/bench_obs.rs: the same network family as
// bench_session (3n + 7 slotted nodes, decisive conditional) at n = 50,
// decided repeatedly on one cached session.

fn network(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

fn median_ns(reps: usize, iters: usize, mut run: impl FnMut(usize)) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            run(iters);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

fn scaled<T>(full: T, quick: T) -> T {
    match std::env::var("QUICK") {
        Ok(v) if !v.is_empty() && v != "0" => quick,
        _ => full,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    #[cfg(feature = "obs")]
    {
        eprintln!(
            "obs_baseline measures the no-hooks build; rebuild with\n  \
             cargo run --release -p uncertain-core --no-default-features --example obs_baseline"
        );
        std::process::exit(2);
    }
    #[allow(unreachable_code)]
    {
        println!("Observability overhead baseline (obs hooks compiled out)");
        let n = 50usize;
        let iters = scaled(2_000, 200);
        let reps = 9;
        let stamp = SystemTime::now().duration_since(UNIX_EPOCH)?.as_secs();

        let expr = network(n);
        let mut session = Session::seeded(1);
        let nodes = session.cached_plan(&expr).slot_count();
        let mut checksum = 0usize;
        // Warm the plan cache and the branch predictors before timing.
        for _ in 0..iters / 10 + 1 {
            checksum += session.pr(&expr, 0.5) as usize;
        }
        let ns = median_ns(reps, iters, |k| {
            for _ in 0..k {
                checksum += session.pr(&expr, 0.5) as usize;
            }
        });
        println!("{nodes} nodes, {iters} decisions/rep: {ns:.1} ns/decision");

        let mut out = OpenOptions::new()
            .create(true)
            .append(true)
            .open("BENCH_obs.json")?;
        writeln!(
            out,
            "{{\"bench\":\"obs_overhead\",\"mode\":\"no_hooks\",\"unix_time\":{stamp},\
             \"nodes\":{nodes},\"decisions\":{iters},\"ns_per_decision\":{ns:.1},\
             \"checksum\":{checksum}}}"
        )?;
        println!("appended the no_hooks record to BENCH_obs.json");
        Ok(())
    }
}
