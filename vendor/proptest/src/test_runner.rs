//! Deterministic case runner: seeds derive from the test name and case
//! index, so failures always reproduce (there is no shrinking to recover
//! a lost seed).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were unsuitable; the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skip) with the given explanation.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this suite always overrides it, and a
        // smaller default keeps accidental unconfigured blocks fast.
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name, mixed with the case index — a stable,
/// platform-independent per-case seed.
pub fn case_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Drives one property test: generates and checks `config.cases` cases.
/// The closure receives the case RNG and a scratch string it should fill
/// with a human-readable description of the generated arguments (printed
/// on failure).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        let mut rng = case_rng(name, i);
        let mut desc = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "[{name}] case {i}/{} failed: {msg}\n  inputs: {desc}",
                    config.cases
                )
            }
            Err(payload) => {
                eprintln!(
                    "[{name}] case {i}/{} panicked\n  inputs: {desc}",
                    config.cases
                );
                resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_stable_per_name_and_index() {
        use rand::RngCore;
        assert_eq!(case_rng("a", 0).next_u64(), case_rng("a", 0).next_u64());
        assert_ne!(case_rng("a", 0).next_u64(), case_rng("a", 1).next_u64());
        assert_ne!(case_rng("a", 0).next_u64(), case_rng("b", 0).next_u64());
    }

    #[test]
    #[should_panic(expected = "failed: nope")]
    fn failing_case_panics_with_inputs() {
        run_cases(&ProptestConfig::with_cases(4), "f", |_rng, desc| {
            desc.push_str("x = 1");
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn rejected_cases_are_skipped() {
        run_cases(&ProptestConfig::with_cases(4), "r", |_rng, _desc| {
            Err(TestCaseError::reject("unsuitable"))
        });
    }
}
