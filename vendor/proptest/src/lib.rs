//! A vendored, offline, API-compatible subset of the `proptest` crate,
//! just large enough for this workspace's property tests. The build
//! container has no network access, so the real crate cannot be fetched;
//! the workspace `[patch.crates-io]` table points here instead.
//!
//! Implemented surface (same names/paths as `proptest` 1.x):
//!
//! * the [`proptest!`] macro, including `#![proptest_config(..)]` and
//!   `arg in strategy` parameters,
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//!   [`strategy::BoxedStrategy`], [`strategy::Just`], [`strategy::Union`],
//! * range strategies for the primitive ints/floats, tuple strategies,
//!   [`collection::vec`], and the [`prop_oneof!`] macro,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!   returning [`test_runner::TestCaseError`],
//! * a deterministic runner (seed derived from test name + case index).
//!
//! **No shrinking**: a failing case reports its generated arguments and
//! panics. Failures are reproducible because seeding is deterministic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// item becomes a regular `#[test]` that runs the body over generated
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands one test item at a time. The `#[test]` attribute in
/// the source is captured by the meta repetition and re-emitted onto the
/// generated zero-argument function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &($config),
                stringify!($name),
                |__rng, __desc| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $(
                        __desc.push_str(stringify!($arg));
                        __desc.push_str(" = ");
                        __desc.push_str(&format!("{:?}", &$arg));
                        __desc.push_str("; ");
                    )*
                    (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (with its
/// generated arguments) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        let __prop_assert_cond: bool = $cond;
        if !__prop_assert_cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let __prop_assert_cond: bool = $cond;
        if !__prop_assert_cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Picks uniformly (or by explicit `weight => strategy` pairs) among
/// several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < 1_000_000, "x={x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range + tuple + map strategies compose.
        #[test]
        fn ranges_and_tuples(a in -5.0_f64..5.0, pair in (0u64..10, 1usize..4)) {
            prop_assert!((-5.0..5.0).contains(&a));
            prop_assert!(pair.0 < 10 && (1..4).contains(&pair.1));
            helper(pair.0)?;
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0i32..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn oneof_and_recursive(n in oneof_strategy()) {
            prop_assert!(n.abs() <= 64.0, "n={n}");
        }
    }

    fn oneof_strategy() -> impl Strategy<Value = f64> {
        let leaf = prop_oneof![-1.0_f64..1.0, Just(0.5)];
        leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|x| -x),
                (inner.clone(), inner).prop_map(|(a, b)| (a + b) / 2.0),
            ]
        })
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::case_rng("t", 3);
        let mut r2 = crate::test_runner::case_rng("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
