//! The [`Strategy`] trait and the combinators this workspace uses:
//! ranges, tuples, [`Just`], [`Union`] (behind `prop_oneof!`), `prop_map`,
//! `prop_recursive`, and [`BoxedStrategy`].

use crate::test_runner::TestRng;
use rand::Rng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `branch` receives a strategy for the
    /// recursive positions and returns the composite strategy. `depth`
    /// bounds the recursion; `_max_nodes` and `_items` are accepted for
    /// API compatibility but the depth bound alone limits tree size here.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _max_nodes: u32,
        _items: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // Mix the base back in at every level so generated trees vary
            // in depth instead of always bottoming out at `depth`.
            let expanded = branch(level).boxed();
            level = Union::new(vec![(1, base.clone()), (2, expanded)]).boxed();
        }
        level
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe shim behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of a common value type (the
/// `prop_oneof!` macro builds these).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "Union requires at least one positive weight");
        Union { options, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, option) in &self.options {
            if pick < *weight {
                return option.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let mut rng = case_rng("union", 0);
        let hits = (0..1000).filter(|_| u.generate(&mut rng)).count();
        assert!((800..1000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn map_and_tuple() {
        let s = (0u64..5, 0u64..5).prop_map(|(a, b)| a * 10 + b);
        let mut rng = case_rng("map", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v / 10 < 5 && v % 10 < 5);
        }
    }
}
