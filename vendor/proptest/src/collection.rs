//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: an exact size or a range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let s = vec(-2.0_f64..2.0, 3..7);
        let mut rng = case_rng("vec", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
        let exact = vec(0u64..3, 5usize);
        assert_eq!(exact.generate(&mut rng).len(), 5);
    }
}
