//! A vendored, offline, API-compatible subset of the `criterion` crate,
//! just large enough for this workspace's benches. The build container has
//! no network access, so the real crate cannot be fetched; the workspace
//! `[patch.crates-io]` table points here instead.
//!
//! Implemented surface (same names/paths as `criterion` 0.5):
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`]
//! (`bench_function`, `benchmark_group`), [`BenchmarkGroup`]
//! (`bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`]
//! (`new`, `from_parameter`), [`Bencher::iter`], and [`black_box`].
//!
//! Measurement model: per benchmark, a short warm-up calibrates a batch
//! size, then timed batches run until a wall-clock budget is spent and the
//! **median** per-iteration time is reported. The budget is 300 ms by
//! default, 60 ms when the `QUICK` environment variable is set, or
//! whatever `CRITERION_MEASURE_MS` says. Results print as text; there are
//! no HTML reports, statistics, or baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver. One instance is shared across a group of
/// benchmark functions (see [`criterion_group!`]).
#[derive(Debug)]
pub struct Criterion {
    measure_budget: Duration,
    warmup_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var_os("QUICK").is_some();
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(if quick { 60 } else { 300 });
        Criterion {
            measure_budget: Duration::from_millis(measure_ms),
            warmup_budget: Duration::from_millis((measure_ms / 4).max(10)),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named set of benchmarks sharing a common context.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &full, &mut |bencher: &mut Bencher| {
            f(bencher, input)
        });
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark id (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    warmup_budget: Duration,
    measure_budget: Duration,
    /// Median ns/iter of the last `iter` call, if any.
    result_ns: Option<f64>,
}

impl Bencher {
    /// Times the closure: calibrates a batch size during warm-up, then
    /// records the median per-iteration time over as many batches as fit
    /// in the measurement budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up doubles the batch size until one batch costs >= ~1/16th
        // of the warm-up budget (so measurement gets >= a handful of
        // batches), or the budget runs out.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if warm_start.elapsed() >= self.warmup_budget {
                break;
            }
            if dt >= self.warmup_budget / 16 {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure_budget || per_iter_ns.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter_ns[per_iter_ns.len() / 2]);
    }
}

/// Formats nanoseconds with criterion-like units.
fn fmt_ns(ns: f64) -> String {
    let mut s = String::new();
    if ns < 1_000.0 {
        let _ = write!(s, "{ns:.2} ns");
    } else if ns < 1_000_000.0 {
        let _ = write!(s, "{:.3} µs", ns / 1_000.0);
    } else if ns < 1_000_000_000.0 {
        let _ = write!(s, "{:.3} ms", ns / 1_000_000.0);
    } else {
        let _ = write!(s, "{:.3} s", ns / 1_000_000_000.0);
    }
    s
}

fn run_one(criterion: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warmup_budget: criterion.warmup_budget,
        measure_budget: criterion.measure_budget,
        result_ns: None,
    };
    f(&mut bencher);
    match bencher.result_ns {
        Some(ns) => println!("{id:<50} time: [{}]", fmt_ns(ns)),
        None => println!("{id:<50} (no Bencher::iter call)"),
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_result() {
        let mut b = Bencher {
            warmup_budget: Duration::from_millis(2),
            measure_budget: Duration::from_millis(5),
            result_ns: None,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        let ns = b.result_ns.expect("iter records a median");
        assert!(ns > 0.0 && ns < 1e7, "ns={ns}");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("sprt", 0.9).into_benchmark_id(),
            "sprt/0.9"
        );
        assert_eq!(BenchmarkId::from_parameter(64).into_benchmark_id(), "64");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measure_budget: Duration::from_millis(3),
            warmup_budget: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }
}
