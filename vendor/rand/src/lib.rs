//! A vendored, offline, API-compatible subset of the [`rand`] crate (0.8
//! line), just large enough for this workspace. The container this project
//! builds in has no network access and no crates.io cache, so the real
//! `rand` cannot be fetched; the workspace `[patch.crates-io]` table points
//! here instead.
//!
//! What is implemented, all with the same names/paths as `rand` 0.8:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits (the used surface:
//!   `next_u32/64`, `fill_bytes`, `gen`, `gen_range`, `gen_bool`,
//!   `seed_from_u64`, `from_entropy`),
//! * [`rngs::SmallRng`], [`rngs::StdRng`], [`rngs::OsRng`],
//! * [`seq::SliceRandom`] (`choose`, `shuffle`),
//! * [`distributions::Standard`] / [`distributions::Distribution`].
//!
//! The generator behind both `SmallRng` and `StdRng` is **xoshiro256++**
//! seeded through SplitMix64 — high-quality, fast, and deterministic per
//! seed, which is all this repository's seeded experiments require. Streams
//! are *not* bit-compatible with the real `rand` crate; seeded tests in
//! this workspace were re-validated against these streams.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]

use core::fmt;

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution as _StdDistribution, Standard};

/// Error type for fallible RNG operations (always succeeds here; kept for
/// API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// SplitMix64 step: the standard seed expander (Vigna).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`] (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0,1], got {p}"
        );
        distributions::unit_f64(self) < p
    }

    /// Fills `dest` with random data (array/slice of bytes).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )+};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty, $unit:path);+ $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * $unit(rng)
            }
        }
    )+};
}

float_sample_range!(f64, distributions::unit_f64; f32, distributions::unit_f32);

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from environmental entropy (time +
    /// process-unique counter; no OS randomness syscall is used).
    fn from_entropy() -> Self {
        Self::seed_from_u64(rngs::entropy_seed())
    }

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Returns a generator seeded from environmental entropy (API parity with
/// `rand::thread_rng`, but it is a fresh `StdRng`, not thread-cached).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Samples one value of type `T` from the [`Standard`] distribution using
/// an entropy-seeded generator.
pub fn random<T>() -> T
where
    Standard: distributions::Distribution<T>,
{
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::{SmallRng, StdRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn small_rng_matches_api() {
        let mut r = SmallRng::seed_from_u64(7);
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
        let y: u64 = r.gen();
        let z: u64 = r.gen();
        assert_ne!(y, z);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = r.gen_range(-2.0..1.5);
            assert!((-2.0..1.5).contains(&f));
            let d = r.gen_range(1..=6);
            assert!((1..=6).contains(&d));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn dyn_rng_core_objects_work() {
        let mut r = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let v = dyn_rng.gen_range(0..10usize);
        assert!(v < 10);
    }
}
