//! Concrete generators: [`SmallRng`], [`StdRng`], [`OsRng`].

use crate::{splitmix64, Error, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// xoshiro256++ core (Blackman & Vigna). Small state, excellent quality,
/// very fast — a sensible stand-in for both of `rand`'s seeded generators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; re-expand from a constant.
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut sm);
            }
        }
        Self { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! xoshiro_front {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                (self.0.next_u64() >> 32) as u32
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.0.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self(Xoshiro256::from_seed_bytes(seed))
            }
        }
    };
}

xoshiro_front!(
    /// A small, fast generator (xoshiro256++ here; `rand` uses xoshiro256++
    /// for 64-bit `SmallRng` too, though streams differ).
    SmallRng
);
xoshiro_front!(
    /// The default "standard" generator. The real `rand` uses ChaCha12;
    /// this vendored stand-in uses xoshiro256++ — not cryptographically
    /// secure, which this workspace never relies on.
    StdRng
);

/// Process-unique entropy for [`SeedableRng::from_entropy`]: wall-clock
/// nanoseconds mixed with a monotonically bumped counter, so two calls in
/// the same nanosecond still diverge.
pub(crate) fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED_5EED_5EED_5EED);
    let c = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let mut sm = t ^ c.rotate_left(32);
    splitmix64(&mut sm)
}

/// An "OS randomness" source. Offline stand-in: every word is freshly
/// derived from [`entropy_seed`], so it is unseeded and non-reproducible,
/// matching how `OsRng` is used (one-off noise, never replayed).
#[derive(Debug, Clone, Copy, Default)]
pub struct OsRng;

impl RngCore for OsRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        entropy_seed()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn entropy_differs_between_calls() {
        assert_ne!(entropy_seed(), entropy_seed());
        let mut os = OsRng;
        assert_ne!(os.next_u64(), os.next_u64());
    }
}
