//! The [`Standard`] distribution and its [`Distribution`] trait — the
//! machinery behind [`Rng::gen`](crate::Rng::gen).

use crate::RngCore;

/// A distribution over values of type `T`, sampled with any generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a primitive type: uniform over the value
/// range for integers, uniform on `[0, 1)` for floats, fair coin for
/// `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Uniform `f64` on `[0, 1)` with 53 random mantissa bits.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` on `[0, 1)` with 24 random mantissa bits.
#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit, as the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),+) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let v: u128 = Standard.sample(rng);
        v as i128
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..5500).contains(&heads), "heads={heads}");
    }

    #[test]
    fn integer_standard_uses_full_width() {
        let mut r = StdRng::seed_from_u64(2);
        let any_high_bit = (0..64).any(|_| r.gen::<u64>() >> 63 == 1);
        assert!(any_high_bit);
    }
}
