//! Sequence helpers: the [`SliceRandom`] trait (`choose`, `shuffle`).

use crate::{Rng, RngCore};

/// Extension methods on slices for random selection and ordering.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly chosen reference, or `None` if the slice is
    /// empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());

        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut r).unwrap()));
        }

        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "32-element shuffle left order unchanged");
    }
}
