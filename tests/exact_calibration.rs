//! Calibration of the analytic evaluation backend against sampling.
//!
//! The `exact` analysis answers recognized queries in closed form with
//! zero samples; this suite is the evidence that switching it on is safe:
//!
//! * graphs it declines (the Fig. 9 GPS network's transcendental speed
//!   computation) stay **bitwise identical** to the sampling path,
//! * graphs it recognizes (Bernoulli evidence chains, linear-Gaussian
//!   comparisons) agree with the SPRT's verdicts and estimates,
//! * the seed-stream contract holds: an exact hit consumes exactly one
//!   query index, so later sampled queries are bitwise unaffected by
//!   which backend answered an earlier one,
//! * the strategy override and the outcome's provenance round-trip
//!   through the serve wire protocol.

use proptest::prelude::*;
use uncertain_suite::gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};
use uncertain_suite::{
    Error, EvalConfig, EvalStrategy, Provenance, ServeClient, ServeConfig, Service, Session,
    Uncertain,
};

/// The literal Fig. 9 evidence network: walking at a true 3 mph with
/// ε = 4 m GPS fixes, asking the paper's `Speed < 4` question. The speed
/// computation is transcendental (haversine), so the analytic backend
/// must decline it.
fn fig9_gps() -> Uncertain<bool> {
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(3.0 / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0).expect("valid accuracy");
    let b = GpsReading::new(end, 4.0).expect("valid accuracy");
    uncertain_speed(&a, &b, 1.0).lt(4.0)
}

/// The `3n + 7`-node linear-Gaussian evidence conditional the plan/serve
/// benchmarks use — affine chains over two shared Gaussian leaves,
/// compared and conjoined. Entirely inside the analytic fragment.
fn evidence_chain(n: usize) -> Uncertain<bool> {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(1.0, 2.0).unwrap();
    let mut left = x.clone();
    let mut right = y.clone();
    for _ in 0..n {
        left = left + &x;
        right = right * 0.99 + &y;
    }
    let a = left.lt(&(right + 40.0 + 8.0 * n as f64));
    let b = (&x + &y).gt(-10.0);
    &a & &b
}

/// A graph outside the analytic fragment but inside the wire format:
/// a product of two non-constant Gaussians.
fn non_analytic_f64() -> Uncertain<f64> {
    let x = Uncertain::normal(1.0, 0.5).unwrap();
    let y = Uncertain::normal(2.0, 0.5).unwrap();
    &x * &y
}

#[test]
fn fig9_gps_stays_bitwise_sampled_under_auto() {
    let cond = fig9_gps();
    let sampling = EvalConfig::default();
    let auto = sampling.with_strategy(EvalStrategy::Auto);

    let mut a = Session::seeded(2014);
    let mut b = Session::seeded(2014).with_strategy(EvalStrategy::Auto);
    let sampled = a.try_evaluate(&cond, 0.5, &sampling).unwrap();
    let routed = b.try_evaluate(&cond, 0.5, &auto).unwrap();

    // The analytic backend declined, so Auto fell through to the SPRT
    // with an untouched seed stream: every field is bitwise identical.
    assert_eq!(sampled.samples, routed.samples);
    assert_eq!(sampled.estimate.to_bits(), routed.estimate.to_bits());
    assert_eq!(sampled.accepted, routed.accepted);
    assert_eq!(
        routed.provenance,
        Provenance::Sampled {
            samples: routed.samples
        }
    );
    assert_eq!(b.exact_hits(), 0);
}

#[test]
fn evidence_chain_decides_with_zero_samples_under_auto() {
    let cond = evidence_chain(50);
    let sampling = EvalConfig::default();
    let auto = sampling.with_strategy(EvalStrategy::Auto);

    let mut s = Session::seeded(7);
    let sampled = s.try_evaluate(&cond, 0.5, &sampling).unwrap();

    let mut e = Session::seeded(7).with_strategy(EvalStrategy::Auto);
    let exact = e.try_evaluate(&cond, 0.5, &auto).unwrap();

    assert_eq!(exact.samples, 0, "analytic path must draw nothing");
    assert!(exact.provenance.is_exact());
    assert!(exact.conclusive);
    assert_eq!(e.exact_hits(), 1);
    // Same verdict as the SPRT, and the closed-form probability sits
    // inside the sampling estimate's SPRT tolerance.
    assert_eq!(exact.accepted, sampled.accepted);
    assert!(
        (exact.estimate - sampled.estimate).abs() < 0.05,
        "exact {} vs sampled {}",
        exact.estimate,
        sampled.estimate
    );
}

#[test]
fn bernoulli_evidence_chain_is_exact() {
    // Conjunction/disjunction/negation over independent Bernoulli leaves:
    // Beta-pseudo-count territory, p = 0.9 · (1 − 0.2 · (1 − 0.7)).
    let a = Uncertain::bernoulli(0.9).unwrap();
    let b = Uncertain::bernoulli(0.2).unwrap();
    let c = Uncertain::bernoulli(0.7).unwrap();
    let cond = &a & &(!&(&b & &(!&c)));
    let auto = EvalConfig::default().with_strategy(EvalStrategy::Auto);
    let mut s = Session::seeded(0).with_strategy(EvalStrategy::Auto);
    let outcome = s.try_evaluate(&cond, 0.5, &auto).unwrap();
    assert_eq!(outcome.samples, 0);
    assert!(outcome.provenance.is_exact());
    assert!((outcome.estimate - 0.9 * (1.0 - 0.2 * 0.3)).abs() < 1e-12);
    assert!(outcome.accepted);
}

#[test]
fn exact_hit_consumes_exactly_one_query_index() {
    // Two sessions, same seed: one answers the chain analytically, the
    // other samples it. The *next* (sampled) query must then be bitwise
    // identical in both — the exact path burned exactly one query index.
    let chain = evidence_chain(20);
    let probe = fig9_gps();
    let sampling = EvalConfig::default();
    let auto = sampling.with_strategy(EvalStrategy::Auto);

    let mut a = Session::seeded(99);
    let mut b = Session::seeded(99).with_strategy(EvalStrategy::Auto);
    let _ = a.try_evaluate(&chain, 0.5, &sampling).unwrap();
    let fast = b.try_evaluate(&chain, 0.5, &auto).unwrap();
    assert_eq!(fast.samples, 0);

    let after_a = a.try_evaluate(&probe, 0.5, &sampling).unwrap();
    let after_b = b.try_evaluate(&probe, 0.5, &auto).unwrap();
    assert_eq!(after_a.samples, after_b.samples);
    assert_eq!(after_a.estimate.to_bits(), after_b.estimate.to_bits());
}

#[test]
fn exact_only_errors_on_unrecognized_graphs_without_burning_seeds() {
    let cond = fig9_gps();
    let exact_only = EvalConfig::default().with_strategy(EvalStrategy::ExactOnly);
    let mut s = Session::seeded(5).with_strategy(EvalStrategy::ExactOnly);
    let before = s.query_index();
    match s.try_evaluate(&cond, 0.5, &exact_only) {
        Err(Error::NotAnalytic(e)) => assert_eq!(e.query, "evaluate"),
        other => panic!("expected NotAnalytic, got {other:?}"),
    }
    match s.stats_with_provenance(&non_analytic_f64(), 100) {
        Err(Error::NotAnalytic(e)) => assert_eq!(e.query, "stats"),
        other => panic!("expected NotAnalytic, got {other:?}"),
    }
    match s.try_e(&non_analytic_f64(), 100) {
        Err(Error::NotAnalytic(e)) => assert_eq!(e.query, "e"),
        other => panic!("expected NotAnalytic, got {other:?}"),
    }
    assert_eq!(
        s.query_index(),
        before,
        "failed queries must not advance the stream"
    );
}

#[test]
fn exact_stats_match_the_law_and_sampling_agrees() {
    // z = 2x − y + 3 with x ~ N(1, 2²), y ~ N(−2, 1): N(7, 17).
    let x = Uncertain::normal(1.0, 2.0).unwrap();
    let y = Uncertain::normal(-2.0, 1.0).unwrap();
    let z = &(&x * 2.0) - &y + 3.0;

    let mut exact = Session::seeded(3).with_strategy(EvalStrategy::Auto);
    let outcome = exact.stats_with_provenance(&z, 4001).unwrap();
    assert!(outcome.provenance.is_exact());
    assert!((outcome.summary.mean() - 7.0).abs() < 1e-9);
    assert!((outcome.summary.variance() - 17.0).abs() < 1e-9);
    assert_eq!(outcome.summary.count(), 4001);
    // The synthesized quantile grid is an honest Gaussian shape: its
    // median matches the mean and its 95% interval matches ±1.96σ.
    let (lo, hi) = outcome.summary.coverage_interval(0.95);
    let sd = 17.0_f64.sqrt();
    assert!((lo - (7.0 - 1.96 * sd)).abs() < 0.05 * sd);
    assert!((hi - (7.0 + 1.96 * sd)).abs() < 0.05 * sd);

    // Sampling lands within Monte-Carlo error of the same law.
    let mut sampled = Session::seeded(3);
    let summary = z.stats_in(&mut sampled, 4001).unwrap();
    assert!((summary.mean() - 7.0).abs() < 4.0 * sd / (4001.0_f64).sqrt());

    // `e` under Auto returns the exact mean with zero extra cost.
    assert_eq!(exact.try_e(&z, 10).unwrap(), 7.0);
}

#[test]
fn strategy_and_provenance_roundtrip_through_the_serve_stack() {
    let service = Service::start(ServeConfig::default().with_shards(1).with_seed(11));
    let listener = service.listen().expect("listen");
    let client = ServeClient::connect(listener.local_addr()).expect("connect");

    let chain = evidence_chain(50);
    // Default (inherit = SamplingOnly): the SPRT answers.
    let sampled = client.evaluate(1, &chain, 0.5).unwrap();
    assert!(sampled.samples > 0);
    assert_eq!(
        sampled.provenance,
        Provenance::Sampled {
            samples: sampled.samples
        }
    );
    // Auto override: the analytic backend answers, across the wire.
    let exact = client
        .evaluate_with_strategy(1, &chain, 0.5, EvalStrategy::Auto)
        .unwrap();
    assert_eq!(exact.samples, 0);
    assert!(exact.provenance.is_exact());
    assert_eq!(exact.accepted, sampled.accepted);

    // The override is per-request: the same tenant's next default
    // request samples again.
    let again = client.evaluate(1, &chain, 0.5).unwrap();
    assert!(again.samples > 0);

    // Exact e/stats cross the wire too.
    let x = Uncertain::normal(4.0, 1.0).unwrap();
    let z = &x + 1.0;
    assert_eq!(
        client
            .e_with_strategy(2, &z, 100, EvalStrategy::ExactOnly)
            .unwrap(),
        5.0
    );
    let summary = client
        .stats_with_strategy(2, &z, 501, EvalStrategy::Auto)
        .unwrap();
    assert!((summary.mean() - 5.0).abs() < 1e-9);

    // ExactOnly on an unrecognized graph is an invalid request, not a
    // hang or a silent fallback.
    let err = client
        .e_with_strategy(3, &non_analytic_f64(), 100, EvalStrategy::ExactOnly)
        .unwrap_err();
    assert!(matches!(err, uncertain_suite::ServeError::Invalid(_)));

    assert!(service.metrics().exact_decisions() >= 3);
    listener.shutdown();
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random linear-Gaussian conditionals with a decisive margin: the
    /// analytic verdict and the SPRT verdict always agree, and Auto
    /// never changes a decision relative to SamplingOnly at the default
    /// config.
    #[test]
    fn auto_agrees_with_sampling_on_linear_gaussian_graphs(
        mu_x in -5.0f64..5.0,
        mu_y in -5.0f64..5.0,
        sd_x in 0.1f64..3.0,
        sd_y in 0.1f64..3.0,
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        k in 1.8f64..4.0,
        seed in 0u64..1000,
        side in 0u8..2,
    ) {
        let above = side == 1;
        let x = Uncertain::normal(mu_x, sd_x).unwrap();
        let y = Uncertain::normal(mu_y, sd_y).unwrap();
        let z = &(&x * a) + &(&y * b) + 0.5;
        let mean = a * mu_x + b * mu_y + 0.5;
        let sd = (a * a * sd_x * sd_x + b * b * sd_y * sd_y).sqrt().max(1e-6);
        // Compare k standard deviations away from the mean, on either
        // side, so Pr[z < c] is decisively far from the 0.5 threshold.
        let c = if above { mean + k * sd } else { mean - k * sd };
        let cond = z.lt(c);

        let sampling = EvalConfig::default();
        let auto = sampling.with_strategy(EvalStrategy::Auto);

        let mut s = Session::seeded(seed);
        let sampled = s.try_evaluate(&cond, 0.5, &sampling).unwrap();
        let mut e = Session::seeded(seed).with_strategy(EvalStrategy::Auto);
        let exact = e.try_evaluate(&cond, 0.5, &auto).unwrap();

        prop_assert_eq!(exact.samples, 0);
        prop_assert!(exact.provenance.is_exact());
        prop_assert_eq!(exact.accepted, sampled.accepted);
        prop_assert_eq!(exact.accepted, above);
        // The closed-form probability sits within the SPRT estimate's
        // tolerance at this decisive margin.
        prop_assert!((exact.estimate - sampled.estimate).abs() < 0.1);
    }
}
