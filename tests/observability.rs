//! Cross-crate observability acceptance tests: decision traces on the
//! paper's Fig. 9 GPS network, budget-capped decisions checked against a
//! tree-walk SPRT reference, and the profiled evaluator.

use uncertain_suite::gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};
use uncertain_suite::stats::{SequentialTest, TestDecision};
use uncertain_suite::{EvalConfig, Evaluator, Session, StoppingReason, TraceLog, Uncertain};

/// The Fig. 9 network: the GPS-Walking speed conditional, two readings a
/// second apart at walking pace.
fn fig9_gps_condition() -> uncertain_suite::Uncertain<bool> {
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(3.0 / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0).expect("valid accuracy");
    let b = GpsReading::new(end, 4.0).expect("valid accuracy");
    uncertain_speed(&a, &b, 1.0).lt(4.0)
}

#[test]
fn gps_decision_trace_matches_the_reported_outcome_exactly() {
    let log = TraceLog::new();
    let mut session = Session::seeded(42).with_recorder(log.clone());
    let cond = fig9_gps_condition();

    let outcome = session.evaluate(&cond, 0.5);
    let traces = log.take();
    assert_eq!(traces.len(), 1, "one decision, one trace");
    let trace = &traces[0];

    // The acceptance bar: the trace's cumulative sample count agrees with
    // the evaluator's reported outcome exactly, not approximately.
    assert_eq!(trace.samples, outcome.samples);
    assert_eq!(trace.estimate, outcome.estimate);
    let last = trace.batches.last().expect("a decided trace has batches");
    assert_eq!(last.samples, trace.samples);
    assert_eq!(last.successes, trace.successes);
    assert!(
        trace
            .batches
            .windows(2)
            .all(|w| w[0].samples < w[1].samples),
        "trajectory is strictly cumulative"
    );
    // The verdict, restated by the trace.
    assert_eq!(
        trace.stopping,
        if outcome.accepted {
            StoppingReason::Accepted
        } else {
            StoppingReason::Rejected
        }
    );
    assert!(trace.completed());
    // The trajectory ended by crossing the boundary it reports.
    assert!(trace.upper > 0.0 && trace.lower < 0.0);
    assert!(
        last.llr >= trace.upper || last.llr <= trace.lower,
        "a conclusive decision's final LLR sits on or past a boundary"
    );
    // Replaying the same decision with no recorder installed is bitwise
    // unaffected by tracing.
    let mut untraced = Session::seeded(42);
    assert_eq!(untraced.evaluate(&cond, 0.5), outcome);
}

#[test]
fn budget_capped_decision_traces_and_matches_a_treewalk_reference() {
    // A fair coin tested with a narrow indifference region: the LLR walk
    // needs an ~74-sample imbalance to cross a boundary, so it runs into
    // the 1000-sample cap and falls back to the empirical estimate.
    let cfg = EvalConfig {
        delta: 0.01,
        ..EvalConfig::default()
    };
    let cond = Uncertain::bernoulli(0.5).unwrap();
    const SEED: u64 = 7;

    let log = TraceLog::new();
    let mut planned = Session::sequential(SEED)
        .with_config(cfg)
        .with_recorder(log.clone());
    let outcome = planned.try_evaluate(&cond, 0.5, &cfg).unwrap();

    // Tree-walk reference: a second sequential session with the same seed
    // consumes the identical sample stream one interpreted draw at a
    // time, fed through a hand-built copy of the same sequential test.
    let mut interpreter = Session::sequential(SEED).with_config(cfg);
    let test = SequentialTest::with_params(
        0.5,
        cfg.delta,
        cfg.alpha,
        cfg.beta,
        cfg.batch,
        cfg.max_samples,
    )
    .unwrap();
    let reference = test.run_batched(|k| {
        (0..k)
            .map(|_| interpreter.sample_interpreted(&cond))
            .collect()
    });

    assert_eq!(outcome.samples, reference.samples);
    assert_eq!(outcome.estimate.to_bits(), reference.estimate.to_bits());
    assert_eq!(
        outcome.accepted,
        reference.decision == TestDecision::AcceptAlternative
    );
    assert!(!outcome.conclusive, "the cap was hit before a verdict");
    assert!(!reference.conclusive);

    let traces = log.take();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.stopping, StoppingReason::BudgetCapped);
    assert_eq!(trace.samples, cfg.max_samples);
    assert_eq!(trace.batches.len(), cfg.max_samples / cfg.batch);
    assert_eq!(trace.successes, reference.successes);
    // Budget-capped means the whole trajectory stayed inside the
    // boundaries — otherwise the test would have stopped there.
    assert!(trace
        .batches
        .iter()
        .all(|p| p.llr < trace.upper && p.llr > trace.lower));
}

#[test]
fn profiled_evaluator_attributes_cost_across_the_gps_network() {
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(3.0 / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0).expect("valid accuracy");
    let b = GpsReading::new(end, 4.0).expect("valid accuracy");
    let speed = uncertain_speed(&a, &b, 1.0);

    let mut eval = Evaluator::profiled(&speed, 9);
    const N: u64 = 200;
    for _ in 0..N {
        eval.sample();
    }
    let profile = eval.profile().expect("profiling mode is on");

    assert_eq!(profile.joint_samples, N);
    assert!(!profile.entries.is_empty());
    // Every slotted node computed a fresh value once per joint sample;
    // extra parent reads are memoized hits, not draws.
    assert!(profile.entries.iter().all(|e| e.draws == N));
    // Inclusive timings: the hottest frame carries the whole cost, and
    // entries arrive hottest-first.
    assert!(profile.total_ns() > 0);
    assert!(profile.entries.windows(2).all(|w| w[0].ns >= w[1].ns));
    // Kind aggregation partitions the entries.
    let kinds = profile.by_kind();
    assert_eq!(
        kinds.iter().map(|k| k.nodes).sum::<usize>(),
        profile.entries.len()
    );
    assert_eq!(
        kinds.iter().map(|k| k.draws).sum::<u64>(),
        profile.entries.iter().map(|e| e.draws).sum::<u64>()
    );
    // An unprofiled evaluator has no profile — and samples bitwise
    // identically to the profiled one.
    let mut plain = Evaluator::new(&speed, 9);
    assert!(plain.profile().is_none());
    let mut traced = Evaluator::profiled(&speed, 9);
    for _ in 0..10 {
        assert_eq!(plain.sample().to_bits(), traced.sample().to_bits());
    }
}
