//! Property-based tests (proptest) over the core invariants of the
//! `Uncertain<T>` runtime and its substrates.

// This suite pins the recorded seed streams, so it deliberately keeps
// driving the deprecated `Sampler`-era surface.
#![allow(deprecated)]

use proptest::prelude::*;
use uncertain_suite::dist::{Continuous, Gaussian, Rayleigh, Uniform};
use uncertain_suite::stats::{wilson_interval, Summary};
use uncertain_suite::{Sampler, Uncertain};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Point-mass arithmetic agrees exactly with scalar arithmetic.
    #[test]
    fn pointmass_arithmetic_is_scalar_arithmetic(
        a in -1e6_f64..1e6,
        b in -1e6_f64..1e6,
    ) {
        let ua = Uncertain::point(a);
        let ub = Uncertain::point(b);
        let mut s = Sampler::seeded(0);
        prop_assert_eq!(s.sample(&(&ua + &ub)), a + b);
        prop_assert_eq!(s.sample(&(&ua - &ub)), a - b);
        prop_assert_eq!(s.sample(&(&ua * &ub)), a * b);
    }

    /// Shared-dependence: x − x ≡ 0 and (x + x) ≡ 2x per joint sample,
    /// whatever the leaf distribution parameters.
    #[test]
    fn ssa_identities(mean in -100.0_f64..100.0, sd in 0.1_f64..50.0, seed in 0u64..1000) {
        let x = Uncertain::normal(mean, sd).unwrap();
        let zero = &x - &x;
        let pair = (&x + &x).zip(&(&x * 2.0));
        let mut s = Sampler::seeded(seed);
        prop_assert_eq!(s.sample(&zero), 0.0);
        let (sum2, twice) = s.sample(&pair);
        prop_assert!((sum2 - twice).abs() < 1e-12);
    }

    /// Comparison operators are consistent: gt ∧ le is impossible on the
    /// same joint sample, gt ∨ le is certain.
    #[test]
    fn comparisons_partition(seed in 0u64..500) {
        let a = Uncertain::normal(0.0, 1.0).unwrap();
        let b = Uncertain::normal(0.0, 1.0).unwrap();
        let gt = a.gt(&b);
        let le = a.le(&b);
        let both = &gt & &le;
        let either = &gt | &le;
        let mut s = Sampler::seeded(seed);
        prop_assert!(!s.sample(&both));
        prop_assert!(s.sample(&either));
    }

    /// Seeded sampling is reproducible for an arbitrary expression shape.
    #[test]
    fn determinism(seed in 0u64..1000, scale in 0.5_f64..5.0) {
        let x = Uncertain::normal(0.0, scale).unwrap();
        let expr = (&x * 2.0 + 1.0).map("sin", f64::sin);
        let mut s1 = Sampler::seeded(seed);
        let mut s2 = Sampler::seeded(seed);
        prop_assert_eq!(s1.samples(&expr, 8), s2.samples(&expr, 8));
    }

    /// Gaussian CDF is monotone and quantile inverts it.
    #[test]
    fn gaussian_cdf_quantile(mu in -50.0_f64..50.0, sd in 0.1_f64..20.0, p in 0.01_f64..0.99) {
        let g = Gaussian::new(mu, sd).unwrap();
        let q = g.quantile(p);
        prop_assert!((g.cdf(q) - p).abs() < 1e-8);
        prop_assert!(g.cdf(q + sd) > g.cdf(q));
    }

    /// The Rayleigh GPS posterior always puts 95% of its mass inside ε.
    #[test]
    fn rayleigh_gps_calibration(eps in 0.5_f64..50.0) {
        let r = Rayleigh::from_gps_accuracy(eps).unwrap();
        prop_assert!((r.cdf(eps) - 0.95).abs() < 1e-9);
    }

    /// Uniform samples honor their support and mean.
    #[test]
    fn uniform_support(lo in -100.0_f64..0.0, width in 0.1_f64..100.0, seed in 0u64..100) {
        let u = Uniform::new(lo, lo + width).unwrap();
        let x = Uncertain::from_distribution(u);
        let mut s = Sampler::seeded(seed);
        for v in s.samples(&x, 50) {
            prop_assert!(v >= lo && v < lo + width);
        }
    }

    /// Summary quantiles are monotone and bounded by min/max.
    #[test]
    fn summary_quantiles_monotone(data in prop::collection::vec(-1e3_f64..1e3, 2..60)) {
        let s = Summary::from_slice(&data).unwrap();
        let mut prev = s.min();
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0);
            prop_assert!(q + 1e-9 >= prev);
            prop_assert!(q >= s.min() - 1e-9 && q <= s.max() + 1e-9);
            prev = q;
        }
    }

    /// Wilson intervals contain the point estimate and stay in [0, 1].
    #[test]
    fn wilson_contains_estimate(k in 0u64..100, extra in 1u64..100) {
        let n = k + extra;
        let (lo, hi) = wilson_interval(k, n, 0.95).unwrap();
        let p = k as f64 / n as f64;
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    /// weight_by with a constant weight is a no-op on the distribution
    /// (same mean within tolerance).
    #[test]
    fn constant_weight_is_noop(c in 0.1_f64..10.0) {
        let x = Uncertain::normal(5.0, 1.0).unwrap();
        let w = x.weight_by(move |_| c);
        let mut s = Sampler::seeded(7);
        let e = w.expected_value_with(&mut s, 3000);
        prop_assert!((e - 5.0).abs() < 0.15, "e={e}");
    }

    /// Network views are well-formed: edges reference known nodes, the
    /// root is present, depth ≥ 1.
    #[test]
    fn network_views_well_formed(n_ops in 1usize..20) {
        let mut expr = Uncertain::normal(0.0, 1.0).unwrap();
        for i in 0..n_ops {
            expr = if i % 2 == 0 {
                expr + Uncertain::normal(0.0, 1.0).unwrap()
            } else {
                expr * 2.0
            };
        }
        let view = expr.network();
        prop_assert!(view.contains(view.root()));
        prop_assert!(view.depth() >= 1);
        for (from, to) in view.edges() {
            prop_assert!(view.contains(from) && view.contains(to));
        }
        // Leaves: one original + one per even step.
        prop_assert_eq!(view.leaf_count(), 1 + n_ops.div_ceil(2));
    }
}

proptest! {
    // Heavier statistical properties get fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Monte-Carlo linearity of expectation for random coefficients.
    #[test]
    fn expectation_linear(a in -5.0_f64..5.0, b in -5.0_f64..5.0) {
        let x = Uncertain::normal(1.0, 1.0).unwrap();
        let y = Uncertain::normal(-2.0, 2.0).unwrap();
        let combo = &x * a + &y * b;
        let mut s = Sampler::seeded(11);
        let e = combo.expected_value_with(&mut s, 20_000);
        let expect = a * 1.0 + b * -2.0;
        prop_assert!((e - expect).abs() < 0.15 * (1.0 + a.abs() + b.abs()), "{e} vs {expect}");
    }

    /// The SPRT answers correctly for clearly separated evidence levels.
    #[test]
    fn sprt_correct_when_separated(p in 0.75_f64..0.95, seed in 0u64..100) {
        let b = Uncertain::bernoulli(p).unwrap();
        let mut s = Sampler::seeded(seed);
        prop_assert!(b.is_probable_with(&mut s));
        prop_assert!(!(!&b).is_probable_with(&mut s));
    }
}
