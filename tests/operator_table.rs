//! Table 1 of the paper, as executable checks: every operator and method
//! of the `Uncertain<T>` algebra with its type and semantics.
//!
//! | Math (+ − × ÷)    | `U<T> → U<T> → U<T>`        |
//! | Order (< > ≤ ≥)   | `U<T> → U<T> → U<Bool>`     |
//! | Logical (∧ ∨)     | `U<Bool> → U<Bool> → U<Bool>` |
//! | Unary (¬)         | `U<Bool> → U<Bool>`         |
//! | Pointmass         | `T → U<T>`                  |
//! | Explicit Pr       | `U<Bool> → [0,1] → Bool`    |
//! | Implicit Pr       | `U<Bool> → Bool`            |
//! | Expected value E  | `U<T> → T`                  |

// This suite pins the recorded seed streams, so it deliberately keeps
// driving the deprecated `Sampler`-era surface.
#![allow(deprecated)]

use uncertain_suite::{Sampler, Uncertain};

/// A helper asserting a value has a given type, documenting the table's
/// signatures at compile time.
fn has_type<T>(_: &T) {}

#[test]
fn math_operators_are_endomorphisms_on_uncertain() {
    let a = Uncertain::normal(2.0, 0.1).unwrap();
    let b = Uncertain::normal(3.0, 0.1).unwrap();
    let sum = &a + &b;
    let diff = &a - &b;
    let prod = &a * &b;
    let quot = &a / &b;
    has_type::<Uncertain<f64>>(&sum);
    has_type::<Uncertain<f64>>(&diff);
    has_type::<Uncertain<f64>>(&prod);
    has_type::<Uncertain<f64>>(&quot);

    let mut s = Sampler::seeded(1);
    assert!((sum.expected_value_with(&mut s, 2000) - 5.0).abs() < 0.05);
    assert!((diff.expected_value_with(&mut s, 2000) + 1.0).abs() < 0.05);
    assert!((prod.expected_value_with(&mut s, 2000) - 6.0).abs() < 0.1);
    assert!((quot.expected_value_with(&mut s, 2000) - 2.0 / 3.0).abs() < 0.05);
}

#[test]
fn order_operators_return_uncertain_bool() {
    let a = Uncertain::normal(0.0, 1.0).unwrap();
    let b = Uncertain::normal(1.0, 1.0).unwrap();
    let lt = a.lt(&b);
    let gt = a.gt(&b);
    let le = a.le(&b);
    let ge = a.ge(&b);
    has_type::<Uncertain<bool>>(&lt);
    has_type::<Uncertain<bool>>(&gt);
    has_type::<Uncertain<bool>>(&le);
    has_type::<Uncertain<bool>>(&ge);

    // Pr[a < b] for N(0,1) vs N(1,1): Φ(1/√2) ≈ 0.76.
    let mut s = Sampler::seeded(2);
    let p = lt.probability_with(&mut s, 20_000);
    assert!((p - 0.7602).abs() < 0.02, "p={p}");
    // lt and ge are complements on joint samples.
    let consistent = lt.eq_exact(&(!&ge));
    for _ in 0..100 {
        assert!(s.sample(&consistent));
    }
}

#[test]
fn logical_operators_compose_uncertain_bools() {
    let a = Uncertain::bernoulli(0.6).unwrap();
    let b = Uncertain::bernoulli(0.6).unwrap();
    let and = &a & &b;
    let or = &a | &b;
    let not = !&a;
    has_type::<Uncertain<bool>>(&and);
    has_type::<Uncertain<bool>>(&or);
    has_type::<Uncertain<bool>>(&not);

    let mut s = Sampler::seeded(3);
    assert!((and.probability_with(&mut s, 20_000) - 0.36).abs() < 0.02);
    assert!((or.probability_with(&mut s, 20_000) - 0.84).abs() < 0.02);
    assert!((not.probability_with(&mut s, 20_000) - 0.4).abs() < 0.02);
}

#[test]
fn pointmass_lifts_scalars() {
    // Explicit constructor, `From`, and the implicit scalar coercion in
    // mixed arithmetic (the paper's `Distance / dt`).
    let explicit = Uncertain::point(4.0);
    let from: Uncertain<f64> = 4.0.into();
    let mut s = Sampler::seeded(4);
    assert_eq!(s.sample(&explicit), 4.0);
    assert_eq!(s.sample(&from), 4.0);

    let distance = Uncertain::normal(30.0, 3.0).unwrap();
    let speed = &distance / 10.0; // scalar coerced to a point mass
    assert!((speed.expected_value_with(&mut s, 3000) - 3.0).abs() < 0.05);
}

#[test]
fn explicit_pr_takes_a_threshold() {
    let b = Uncertain::bernoulli(0.7).unwrap();
    let mut s = Sampler::seeded(5);
    let decided: bool = b.pr_with(0.5, &mut s);
    assert!(decided);
    assert!(!b.pr_with(0.9, &mut s));
}

#[test]
fn implicit_pr_is_more_likely_than_not() {
    let b = Uncertain::bernoulli(0.7).unwrap();
    let mut s = Sampler::seeded(6);
    let decided: bool = b.is_probable_with(&mut s);
    assert!(decided);
    assert!(!(!&b).is_probable_with(&mut s));
}

#[test]
fn expected_value_projects_to_base_type() {
    let x = Uncertain::normal(2.5, 1.0).unwrap();
    let mut s = Sampler::seeded(7);
    let e: f64 = x.expected_value_with(&mut s, 5000);
    has_type::<f64>(&e);
    assert!((e - 2.5).abs() < 0.05);

    // E preserves the base type's total order where distributions overlap
    // too much for conclusive comparisons (the paper's sorting use case).
    let lo = Uncertain::normal(1.0, 5.0).unwrap();
    let hi = Uncertain::normal(1.2, 5.0).unwrap();
    let e_lo = lo.expected_value_with(&mut s, 50_000);
    let e_hi = hi.expected_value_with(&mut s, 50_000);
    assert!(
        e_lo < e_hi,
        "E gives a usable total order: {e_lo} vs {e_hi}"
    );
}

#[test]
fn lifted_operators_may_change_type() {
    // §3.3: "a lifted operator may have any type", e.g. integer division
    // producing a real.
    let a = Uncertain::point(7i64);
    let b = Uncertain::point(2i64);
    let real_div = a.map2("int/int→f64", &b, |x, y| x as f64 / y as f64);
    let mut s = Sampler::seeded(8);
    assert_eq!(s.sample(&real_div), 3.5);
}
