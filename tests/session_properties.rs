//! Property-based tests (proptest) over the [`Session`] runtime: the plan
//! cache must be invisible to the sample stream (hit, miss, eviction, and
//! explicit invalidation all draw the same values), substream seeding must
//! be thread-count invariant, and the deprecated `Sampler` shim must make
//! the same decisions as the session it wraps.

// Half of these properties pin the deprecated `Sampler`-era surface
// against the Session API on purpose.
#![allow(deprecated)]

use proptest::prelude::*;
use uncertain_suite::gps::{uncertain_speed, GeoCoordinate, GpsReading, MPS_TO_MPH};
use uncertain_suite::{Sampler, Session, Uncertain};

/// An arbitrary expression shape mixing shared leaves, scalar ops, and a
/// nonlinearity — the shapes whose plans the session caches.
fn build_expr(mean: f64, sd: f64, n_ops: usize) -> Uncertain<f64> {
    let x = Uncertain::normal(mean, sd).unwrap();
    let mut expr = x.clone();
    for i in 0..n_ops {
        expr = match i % 4 {
            0 => expr + &x,
            1 => expr * 0.5,
            2 => expr - Uncertain::uniform(0.0, 1.0).unwrap(),
            _ => expr.map("tanh", f64::tanh),
        };
    }
    expr
}

/// The paper's Fig. 9 evidence network: walking-speed distribution from
/// two ε = 4 m GPS fixes one second apart.
fn fig9_speed(true_mph: f64) -> Uncertain<f64> {
    let start = GeoCoordinate::new(47.6, -122.3);
    let end = start.destination(true_mph / MPS_TO_MPH, 90.0);
    let a = GpsReading::new(start, 4.0).unwrap();
    let b = GpsReading::new(end, 4.0).unwrap();
    uncertain_speed(&a, &b, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A cache hit draws the exact stream a fresh compile draws: the same
    /// session queried twice (second query hits) matches a session that is
    /// forced to recompile between queries.
    #[test]
    fn cache_hit_stream_equals_fresh_compile_stream(
        mean in -10.0_f64..10.0,
        sd in 0.1_f64..5.0,
        n_ops in 0usize..12,
        seed in 0u64..1000,
    ) {
        let expr = build_expr(mean, sd, n_ops);

        let mut hitting = Session::seeded(seed);
        let h1 = hitting.samples(&expr, 12);
        let h2 = hitting.samples(&expr, 12);

        let mut fresh = Session::seeded(seed);
        let f1 = fresh.samples(&expr, 12);
        fresh.clear_cache();
        let f2 = fresh.samples(&expr, 12);

        prop_assert_eq!(h1, f1);
        prop_assert_eq!(h2, f2);
        let hs = hitting.cache_stats();
        prop_assert_eq!((hs.hits, hs.misses), (1, 1));
        let fs = fresh.cache_stats();
        prop_assert_eq!((fs.hits, fs.misses), (0, 2));
    }

    /// A capacity-1 LRU stays correct under worst-case thrashing: two
    /// roots queried alternately evict each other on every access, yet
    /// every draw matches an uncapped session bitwise.
    #[test]
    fn lru_capacity_one_thrashing_is_correct(
        n_ops in 0usize..8,
        seed in 0u64..1000,
    ) {
        let e1 = build_expr(0.0, 1.0, n_ops);
        let e2 = build_expr(5.0, 2.0, n_ops + 1);

        let mut tiny = Session::seeded(seed).with_cache_capacity(1);
        let mut wide = Session::seeded(seed);
        for _ in 0..3 {
            prop_assert_eq!(tiny.samples(&e1, 5), wide.samples(&e1, 5));
            prop_assert_eq!(tiny.samples(&e2, 5), wide.samples(&e2, 5));
        }

        // Thrashing is visible in the counters: every access misses…
        let ts = tiny.cache_stats();
        prop_assert_eq!((ts.hits, ts.misses), (0, 6));
        // …while the uncapped session compiled each root exactly once.
        let ws = wide.cache_stats();
        prop_assert_eq!((ws.hits, ws.misses), (4, 2));
    }

    /// Explicit invalidation forces a recompile but cannot move the
    /// stream: draws after `invalidate` continue exactly where an
    /// uninterrupted session would be.
    #[test]
    fn invalidate_recompiles_without_moving_stream(
        n_ops in 0usize..10,
        seed in 0u64..1000,
    ) {
        let expr = build_expr(1.0, 1.0, n_ops);

        // Identical query patterns on both sides: each `samples` call is
        // its own substream, so only the cache state may differ.
        let mut invalidated = Session::seeded(seed);
        let mut first = invalidated.samples(&expr, 10);
        prop_assert!(invalidated.invalidate(expr.id()));
        prop_assert!(!invalidated.invalidate(expr.id()), "entry already gone");
        first.extend(invalidated.samples(&expr, 10));

        let mut unbroken = Session::seeded(seed);
        let mut reference = unbroken.samples(&expr, 10);
        reference.extend(unbroken.samples(&expr, 10));
        prop_assert_eq!(first, reference);
        prop_assert_eq!(invalidated.cache_stats().misses, 2);
        prop_assert_eq!(unbroken.cache_stats().misses, 1);
    }

    /// The deprecated `Sampler` shim and `Session::sequential` make
    /// identical decisions on the Fig. 9 evidence network — the whole
    /// compatibility contract of the wrapper, over arbitrary true speeds,
    /// thresholds, and seeds.
    #[test]
    fn sampler_shim_matches_sequential_session_decisions(
        true_mph in 1.0_f64..8.0,
        threshold in 0.5_f64..0.95,
        seed in 0u64..500,
    ) {
        let over = fig9_speed(true_mph).gt(4.0);

        let mut shim = Sampler::seeded(seed);
        let mut session = Session::sequential(seed);

        // Same call order on both sides so the streams stay aligned.
        prop_assert_eq!(
            over.pr_with(threshold, &mut shim),
            over.pr_in(&mut session, threshold)
        );
        prop_assert_eq!(
            over.probability_with(&mut shim, 400),
            over.probability_in(&mut session, 400)
        );
        prop_assert_eq!(
            over.is_probable_with(&mut shim),
            over.is_probable_in(&mut session)
        );
        prop_assert_eq!(shim.joint_samples(), session.joint_samples());
    }
}

proptest! {
    // Batched draws are larger here; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Substream seeding is thread-count invariant: a session's batch
    /// draws are bitwise identical whether sampled on 1 or 8 workers.
    #[test]
    fn seeded_session_is_thread_count_invariant(
        n_ops in 0usize..8,
        seed in 0u64..1000,
    ) {
        let expr = build_expr(0.0, 1.0, n_ops);
        // Past the parallel cutover (≥1024), so 8 workers really shard.
        let n = 1500;
        let serial = Session::seeded(seed).with_threads(1).samples(&expr, n);
        let sharded = Session::seeded(seed).with_threads(8).samples(&expr, n);
        prop_assert_eq!(serial, sharded);
    }
}
