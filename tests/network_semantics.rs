//! Cross-cutting semantics of the Bayesian-network runtime: laziness,
//! shared-dependence (SSA) tracking, joint sampling, ternary conditional
//! logic, and Bayesian conditioning — the paper's §3/§4 guarantees,
//! exercised through the public API only.

// This suite pins the recorded seed streams, so it deliberately keeps
// driving the deprecated `Sampler`-era surface.
#![allow(deprecated)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uncertain_suite::{EvalConfig, Sampler, Uncertain};

#[test]
fn construction_is_lazy_sampling_is_not() {
    // Count how many times the leaf's sampling function actually runs.
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&calls);
    let leaf = Uncertain::from_fn("counted", move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
        1.0_f64
    });

    // Building a sizable expression draws nothing.
    let expr = (&leaf + 1.0) * 2.0 - &leaf;
    assert_eq!(calls.load(Ordering::SeqCst), 0, "operators must not sample");

    // One joint sample evaluates the leaf exactly once (memoized), even
    // though the expression references it twice.
    let mut s = Sampler::seeded(1);
    let v = s.sample(&expr);
    assert_eq!(v, (1.0 + 1.0) * 2.0 - 1.0);
    assert_eq!(calls.load(Ordering::SeqCst), 1, "shared leaf sampled once");

    // n joint samples → n evaluations.
    let _ = s.samples(&expr, 9);
    assert_eq!(calls.load(Ordering::SeqCst), 10);
}

#[test]
fn figure_8_network_and_variance() {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = Uncertain::normal(0.0, 1.0).unwrap();
    let a = &y + &x;
    let b = &a + &x;

    // Structure: 2 leaves, 2 inner nodes (the paper's correct Fig. 8b).
    let view = b.network();
    assert_eq!(view.leaf_count(), 2);
    assert_eq!(view.node_count(), 4);

    // Semantics: Var[Y + 2X] = 5, not the wrong network's 3.
    let mut s = Sampler::seeded(2);
    let stats = b.stats_with(&mut s, 30_000).unwrap();
    assert!((stats.variance() - 5.0).abs() < 0.3, "{}", stats.variance());
}

#[test]
fn correlation_flows_through_arbitrary_combinators() {
    // (x·3 − x) / x == 2 exactly, whatever x sampled.
    let x = Uncertain::uniform(1.0, 9.0).unwrap();
    let expr = (&x * 3.0 - &x) / &x;
    let mut s = Sampler::seeded(3);
    for _ in 0..200 {
        assert!((s.sample(&expr) - 2.0).abs() < 1e-12);
    }
}

#[test]
fn zip_and_flat_map_share_context() {
    // flat_map sees the same joint sample as a zip of its source.
    let x = Uncertain::uniform(0.0, 1.0).unwrap();
    let doubled = x.flat_map("double", |v| Uncertain::point(v * 2.0));
    let pair = x.zip(&doubled);
    let mut s = Sampler::seeded(4);
    for _ in 0..100 {
        let (raw, dbl) = s.sample(&pair);
        assert!((dbl - 2.0 * raw).abs() < 1e-12);
    }
}

#[test]
fn ternary_logic_on_marginal_comparisons() {
    // §3.4: for overlapping distributions, neither `a < b` nor `a >= b`
    // may reach significance at a bounded budget.
    let a = Uncertain::normal(0.0, 1.0).unwrap();
    let b = Uncertain::normal(0.02, 1.0).unwrap();
    let cfg = EvalConfig::default().with_max_samples(60);
    let mut s = Sampler::seeded(5);
    let mut neither = 0;
    for _ in 0..20 {
        let lt = a.lt(&b).evaluate(0.5, &mut s, &cfg);
        let ge = a.ge(&b).evaluate(0.5, &mut s, &cfg);
        if lt.is_inconclusive() && ge.is_inconclusive() {
            neither += 1;
        }
    }
    assert!(
        neither >= 10,
        "typically neither side is conclusive: {neither}/20"
    );
}

#[test]
fn conclusive_comparisons_on_separated_distributions() {
    let lo = Uncertain::normal(0.0, 1.0).unwrap();
    let hi = Uncertain::normal(5.0, 1.0).unwrap();
    let mut s = Sampler::seeded(6);
    let o = lo.lt(&hi).evaluate(0.5, &mut s, &EvalConfig::default());
    assert!(o.is_true());
    assert!(
        o.samples <= 50,
        "easy comparison took {} samples",
        o.samples
    );
}

#[test]
fn conditioning_composes_with_computation() {
    // Condition a sum on an observable, then compute with the posterior.
    let die = Uncertain::from_fn("d6", |rng| {
        use rand::Rng;
        rng.gen_range(1..=6) as f64
    });
    let pair_sum = &die + &die.encapsulate();
    // Observe: the sum is at least 10 (so 10, 11 or 12).
    let high = pair_sum.condition_on_default(|s| *s >= 10.0);
    let mut s = Sampler::seeded(7);
    let e = high.expected_value_with(&mut s, 4000);
    // Analytic: E[sum | sum ≥ 10] = (10·3 + 11·2 + 12·1)/6 = 64/6 ≈ 10.67.
    assert!((e - 64.0 / 6.0).abs() < 0.1, "e={e}");
    // And downstream arithmetic still works.
    let halved = high / 2.0;
    let eh = halved.expected_value_with(&mut s, 4000);
    assert!((eh - 32.0 / 6.0).abs() < 0.1, "eh={eh}");
}

#[test]
fn priors_and_conditionals_interact_correctly() {
    // A wide likelihood plus a tight prior: conditionals should answer
    // according to the posterior, not the likelihood.
    let raw = Uncertain::normal(0.0, 10.0).unwrap();
    let posterior = raw.weight_by(|v| {
        // Unnormalized N(6, 1) density.
        (-0.5 * (v - 6.0) * (v - 6.0)).exp()
    });
    let mut s = Sampler::seeded(8);
    assert!(posterior.gt(3.0).is_probable_with(&mut s));
    assert!(!raw.gt(3.0).is_probable_with(&mut s));
}

#[test]
fn networks_render_to_dot_with_shaded_leaves() {
    let a = Uncertain::normal(0.0, 1.0).unwrap();
    let b = Uncertain::normal(0.0, 1.0).unwrap();
    let c = (&a + &b).gt(0.5);
    let dot = c.to_dot();
    assert!(dot.contains("digraph"));
    // Three leaves: the two Gaussians plus the point mass the comparison
    // lifted from the scalar 0.5.
    assert_eq!(
        dot.matches("fillcolor=gray85").count(),
        3,
        "three leaves shaded"
    );
    assert!(dot.contains('>'), "comparison node labeled");
}

#[test]
fn sampler_counts_joint_samples_across_conditionals() {
    let b = Uncertain::bernoulli(0.95).unwrap();
    let mut s = Sampler::seeded(9);
    let o = b.evaluate(0.5, &mut s, &EvalConfig::default());
    assert_eq!(s.joint_samples() as usize, o.samples);
}
