//! End-to-end integration tests spanning the case-study crates: each
//! asserts the qualitative claim of the corresponding section of the
//! paper's evaluation, at reduced scale (the figure binaries run the full
//! scale).

// This suite pins the recorded seed streams, so it deliberately keeps
// driving the deprecated `Sampler`-era surface.
#![allow(deprecated)]

use uncertain_suite::gps::{
    naive_speed, priors, uncertain_speed, Action, GeoCoordinate, GpsReading, SimulatedGps,
    WalkExperiment,
};
use uncertain_suite::life::{LifeExperiment, Variant};
use uncertain_suite::neural::eval::{parakeet_precision_recall, parrot_confusion};
use uncertain_suite::neural::sobel::generate_dataset;
use uncertain_suite::neural::{Parakeet, Parrot};
use uncertain_suite::{Sampler, Session};

// ---------------------------------------------------------------------- GPS

#[test]
fn gps_walking_claims() {
    // §5.1 at reduced scale: naive is absurd, E smooths, priors repair.
    let result = WalkExperiment::new(4.0, 150, 11)
        .samples_per_estimate(150)
        .run()
        .unwrap();

    // Compounded error: the naive series shows running speeds for a walker.
    assert!(result.max_of(|r| r.naive_speed) > 6.0);

    // The prior-improved series never leaves plausible walking range.
    assert!(result.max_of(|r| r.improved_speed) <= 8.0);

    // Mean absolute error: improved beats naive.
    let mae = |f: &dyn Fn(&uncertain_suite::gps::WalkRecord) -> f64| {
        result
            .records
            .iter()
            .map(|r| (f(r) - r.true_speed).abs())
            .sum::<f64>()
            / result.records.len() as f64
    };
    let naive_err = mae(&|r| r.naive_speed);
    let improved_err = mae(&|r| r.improved_speed);
    assert!(improved_err < naive_err, "{improved_err} vs {naive_err}");

    // The uncertain app nags less when unsure.
    assert!(
        result.uncertain_action_count(Action::Silent) > 0,
        "the third action exists only with evidence"
    );
}

#[test]
fn compounding_error_quantified() {
    // §2: with ε = 4 m, the 95% interval of a 1-second speed spans >10 mph
    // (the paper quotes 12.7).
    let start = GeoCoordinate::new(47.6, -122.3);
    let a = GpsReading::new(start, 4.0).unwrap();
    let b = GpsReading::new(start.destination(1.34, 90.0), 4.0).unwrap();
    let speed = uncertain_speed(&a, &b, 1.0);
    let mut s = Sampler::seeded(12);
    let stats = speed.stats_with(&mut s, 5000).unwrap();
    let (lo, hi) = stats.coverage_interval(0.95);
    assert!(hi - lo > 10.0, "interval = [{lo:.1}, {hi:.1}]");
}

#[test]
fn stationary_user_naive_speed_is_biased() {
    // Two fixes of a stationary user: naive speed is strictly positive
    // noise; its mean is far from zero.
    let gps = SimulatedGps::new(4.0).unwrap();
    let truth = GeoCoordinate::new(47.6, -122.3);
    let mut s = Sampler::seeded(13);
    let mut total = 0.0;
    let n = 200;
    for _ in 0..n {
        let a = gps.read(&truth, s.rng());
        let b = gps.read(&truth, s.rng());
        total += naive_speed(&a, &b, 1.0);
    }
    assert!(total / n as f64 > 2.0, "mean = {}", total / n as f64);
}

#[test]
fn walking_prior_is_a_library_preset() {
    // §3.5: experts ship preset priors; applications apply them in one line.
    let noisy = uncertain_suite::Uncertain::normal(20.0, 30.0).unwrap();
    let improved = priors::apply(&noisy, priors::walking_speed());
    let mut s = Sampler::seeded(14);
    for _ in 0..500 {
        let v = s.sample(&improved);
        assert!((0.0..=8.0).contains(&v), "prior support violated: {v}");
    }
}

// --------------------------------------------------------------------- Life

#[test]
fn sensor_life_figure_14_shape() {
    let exp = LifeExperiment::new(10, 10, 4, 3, 21);
    let sigma = 0.2;
    let naive = exp.run(Variant::Naive, sigma).unwrap();
    let sensor = exp.run(Variant::Sensor, sigma).unwrap();
    let bayes = exp.run(Variant::Bayes, sigma).unwrap();

    // (a) accuracy ordering.
    assert!(naive.error_rate() > sensor.error_rate());
    assert!(bayes.error_rate() <= sensor.error_rate());
    assert!(bayes.error_rate() < 0.01);

    // (b) cost ordering: naive = 1, bayes < sensor.
    assert_eq!(naive.samples_per_update(), 1.0);
    assert!(bayes.samples_per_update() < sensor.samples_per_update());
}

#[test]
fn sensor_life_errors_scale_with_noise() {
    let exp = LifeExperiment::new(10, 10, 4, 3, 22);
    let low = exp.run(Variant::Sensor, 0.05).unwrap();
    let high = exp.run(Variant::Sensor, 0.35).unwrap();
    assert!(
        high.error_rate() > low.error_rate(),
        "{} vs {}",
        high.error_rate(),
        low.error_rate()
    );
}

// ------------------------------------------------------------------- Neural

#[test]
fn parakeet_beats_parrot_on_precision() {
    let train = generate_dataset(250, 31);
    let test = generate_dataset(150, 32);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(33);
    let parrot = Parrot::train(&train, 40, 0.05, &mut rng);
    let parakeet = Parakeet::train_tuned(&train, 50, 34, &mut rng);

    let parrot_m = parrot_confusion(&parrot, &test);
    // Session::sequential(35) draws the exact stream Sampler::seeded(35)
    // drew, so the recorded qualitative outcome is unchanged.
    let mut s = Session::sequential(35);
    let points = parakeet_precision_recall(&parakeet, &test, &[0.8], 120, &mut s);

    let parrot_precision = parrot_m.precision().unwrap();
    let parakeet_precision = points[0].precision.unwrap_or(1.0);
    assert!(
        parakeet_precision >= parrot_precision,
        "α=0.8 must not lose precision: parakeet {parakeet_precision} vs parrot {parrot_precision}"
    );
}

#[test]
fn alpha_trades_recall_for_precision() {
    let train = generate_dataset(250, 36);
    let test = generate_dataset(150, 37);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(38);
    let parakeet = Parakeet::train_tuned(&train, 50, 39, &mut rng);
    let mut s = Session::sequential(40);
    let points = parakeet_precision_recall(&parakeet, &test, &[0.1, 0.9], 120, &mut s);
    assert!(
        points[0].recall.unwrap() >= points[1].recall.unwrap(),
        "recall at α=0.1 must be ≥ recall at α=0.9"
    );
}
