//! Stress test: randomly generated expression trees. A recursive proptest
//! strategy builds arbitrary `Uncertain<f64>` networks (leaves, unary and
//! binary operators, shared sub-expressions, priors) and checks the
//! runtime's global invariants on each: well-formed graphs, deterministic
//! sampling, finite values, and consistency between the graph structure
//! and sampling behavior.

use proptest::prelude::*;
use uncertain_suite::{Sampler, Uncertain};

/// A serializable description of an expression tree (proptest shrinks
/// these, then we build the real network).
#[derive(Debug, Clone)]
enum Expr {
    Normal {
        mean: f64,
        sd: f64,
    },
    Uniform {
        lo: f64,
        width: f64,
    },
    Point(f64),
    Neg(Box<Expr>),
    Abs(Box<Expr>),
    Scale(Box<Expr>, f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// `child + child` built from ONE shared node — exercises SSA sharing.
    SelfSum(Box<Expr>),
    /// Clamped, prior-weighted variant — exercises the SIR node.
    Weighted(Box<Expr>),
}

impl Expr {
    fn build(&self) -> Uncertain<f64> {
        match self {
            Expr::Normal { mean, sd } => Uncertain::normal(*mean, *sd).expect("valid params"),
            Expr::Uniform { lo, width } => {
                Uncertain::uniform(*lo, lo + width).expect("valid params")
            }
            Expr::Point(v) => Uncertain::point(*v),
            Expr::Neg(e) => -e.build(),
            Expr::Abs(e) => e.build().abs(),
            Expr::Scale(e, k) => e.build() * *k,
            Expr::Add(a, b) => a.build() + b.build(),
            Expr::Sub(a, b) => a.build() - b.build(),
            Expr::Mul(a, b) => a.build() * b.build(),
            Expr::SelfSum(e) => {
                let shared = e.build();
                &shared + &shared
            }
            Expr::Weighted(e) => e.build().weight_by_k(|v| (-v.abs()).exp().max(1e-12), 4),
        }
    }
}

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-20.0_f64..20.0, 0.1_f64..5.0).prop_map(|(mean, sd)| Expr::Normal { mean, sd }),
        (-20.0_f64..0.0, 0.5_f64..10.0).prop_map(|(lo, width)| Expr::Uniform { lo, width }),
        (-10.0_f64..10.0).prop_map(Expr::Point),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Abs(Box::new(e))),
            (inner.clone(), -3.0_f64..3.0).prop_map(|(e, k)| Expr::Scale(Box::new(e), k)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::SelfSum(Box::new(e))),
            inner.prop_map(|e| Expr::Weighted(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random network samples finite values deterministically and
    /// reports a well-formed graph.
    #[test]
    fn random_networks_are_well_behaved(tree in expr(), seed in 0u64..10_000) {
        let u = tree.build();

        // Graph invariants.
        let view = u.network();
        prop_assert!(view.node_count() >= 1);
        prop_assert!(view.leaf_count() >= 1);
        prop_assert!(view.depth() >= 1);
        prop_assert!(view.contains(view.root()));
        for (from, to) in view.edges() {
            prop_assert!(view.contains(from) && view.contains(to));
        }
        let dot = view.to_dot();
        prop_assert!(dot.starts_with("digraph"));

        // Sampling invariants.
        let mut s1 = Sampler::seeded(seed);
        let mut s2 = Sampler::seeded(seed);
        for _ in 0..8 {
            let v1 = s1.sample(&u);
            let v2 = s2.sample(&u);
            prop_assert!(v1.is_finite(), "finite leaves ⇒ finite values");
            prop_assert_eq!(v1, v2, "same seed ⇒ same joint samples");
        }
    }

    /// Affine identities hold exactly per joint sample on any network:
    /// `e − e ≡ 0` and `(e + e) − 2e ≡ 0` (up to floating-point rounding
    /// of the ×2).
    #[test]
    fn random_networks_respect_sharing(tree in expr(), seed in 0u64..10_000) {
        let u = tree.build();
        let zero = &u - &u;
        let doubled_diff = (&u + &u) - &u * 2.0;
        let mut s = Sampler::seeded(seed);
        for _ in 0..8 {
            prop_assert_eq!(s.sample(&zero), 0.0);
            let d = s.sample(&doubled_diff);
            prop_assert!(d.abs() < 1e-9, "d={d}");
        }
    }

    /// Comparisons of a network against itself are tautologies.
    #[test]
    fn random_networks_compare_reflexively(tree in expr(), seed in 0u64..10_000) {
        let u = tree.build();
        let ge_self = u.ge(&u);
        let gt_self = u.gt(&u);
        let mut s = Sampler::seeded(seed);
        for _ in 0..8 {
            prop_assert!(s.sample(&ge_self));
            prop_assert!(!s.sample(&gt_self));
        }
    }
}
