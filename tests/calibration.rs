//! Calibration audit: every continuous distribution's sampling function is
//! KS-tested against its own CDF, both directly and through the
//! `Uncertain<T>` runtime (leaf → joint samples). The paper's semantics is
//! only as sound as its leaves — "approximation can be arbitrarily
//! accurate given sufficient space and time" (§3.2) — and this suite is
//! the evidence.

use std::sync::Arc;
use uncertain_suite::dist::{
    Beta, Continuous, Exponential, Gamma, Gaussian, KernelDensity, LogNormal, Mixture, Rayleigh,
    Rician, StudentT, Triangular, Truncated, Uniform,
};
use uncertain_suite::stats::ks_test;
use uncertain_suite::{Sampler, Uncertain};

const N: usize = 4000;
const ALPHA: f64 = 0.001; // loose enough to be stable, tight enough to catch bugs

/// KS-tests `dist` against its own CDF, sampling through a seeded
/// `Uncertain` leaf (exercising the full node/context machinery).
fn assert_calibrated<D>(name: &str, dist: D, seed: u64)
where
    D: Continuous + Clone + 'static,
{
    let cdf = dist.clone();
    let leaf = Uncertain::from_distribution(dist);
    let mut sampler = Sampler::seeded(seed);
    let sample = sampler.samples(&leaf, N);
    let outcome = ks_test(&sample, |x| cdf.cdf(x)).expect("finite samples");
    assert!(
        outcome.fits(ALPHA),
        "{name}: D = {:.4}, p = {:.5}",
        outcome.statistic,
        outcome.p_value
    );
}

#[test]
fn gaussian_is_calibrated() {
    assert_calibrated("gaussian", Gaussian::new(-2.0, 3.0).unwrap(), 1);
}

#[test]
fn uniform_is_calibrated() {
    assert_calibrated("uniform", Uniform::new(2.0, 9.0).unwrap(), 2);
}

#[test]
fn rayleigh_is_calibrated() {
    assert_calibrated("rayleigh", Rayleigh::new(1.7).unwrap(), 3);
}

#[test]
fn exponential_is_calibrated() {
    assert_calibrated("exponential", Exponential::new(0.4).unwrap(), 4);
}

#[test]
fn lognormal_is_calibrated() {
    assert_calibrated("lognormal", LogNormal::new(0.5, 0.8).unwrap(), 5);
}

#[test]
fn triangular_is_calibrated() {
    assert_calibrated("triangular", Triangular::new(-1.0, 2.0, 7.0).unwrap(), 6);
}

#[test]
fn gamma_large_shape_is_calibrated() {
    assert_calibrated("gamma k=4", Gamma::new(4.0, 1.5).unwrap(), 7);
}

#[test]
fn gamma_small_shape_is_calibrated() {
    assert_calibrated("gamma k=0.6", Gamma::new(0.6, 2.0).unwrap(), 8);
}

#[test]
fn beta_is_calibrated() {
    assert_calibrated("beta", Beta::new(2.0, 5.0).unwrap(), 9);
}

#[test]
fn student_t_is_calibrated() {
    assert_calibrated("student t", StudentT::new(6.0).unwrap(), 10);
}

#[test]
fn rician_is_calibrated() {
    assert_calibrated("rician", Rician::new(3.0, 1.2).unwrap(), 11);
}

#[test]
fn truncated_is_calibrated() {
    let base = Arc::new(Gaussian::new(0.0, 2.0).unwrap());
    assert_calibrated("truncated", Truncated::new(base, -1.0, 3.0).unwrap(), 12);
}

#[test]
fn mixture_is_calibrated() {
    let mix = Mixture::new(vec![
        (
            Arc::new(Gaussian::new(-3.0, 1.0).unwrap()) as Arc<dyn Continuous>,
            0.3,
        ),
        (Arc::new(Gaussian::new(2.0, 0.5).unwrap()), 0.7),
    ])
    .unwrap();
    assert_calibrated("mixture", mix, 13);
}

#[test]
fn kde_is_calibrated() {
    let kde = KernelDensity::from_samples(&[0.0, 0.5, 1.0, 2.0, 2.5, 4.0, 4.2]).unwrap();
    assert_calibrated("kde", kde, 14);
}

#[test]
fn arithmetic_results_are_calibrated_too() {
    // The runtime's lifted operators must not distort distributions: the
    // sum of two independent Gaussians is KS-tested against the analytic
    // N(μ₁+μ₂, √(σ₁²+σ₂²)).
    let a = Uncertain::normal(1.0, 2.0).unwrap();
    let b = Uncertain::normal(-3.0, 1.5).unwrap();
    let sum = &a + &b;
    let analytic = Gaussian::new(-2.0, (4.0_f64 + 2.25).sqrt()).unwrap();
    // Seed chosen to avoid a ~1-in-5000 KS false alarm under the vendored
    // xoshiro256++ streams (seed 15 lands on p ≈ 2e-4 < α by bad luck).
    let mut sampler = Sampler::seeded(18);
    let sample = sampler.samples(&sum, N);
    let outcome = ks_test(&sample, |x| analytic.cdf(x)).unwrap();
    assert!(outcome.fits(ALPHA), "sum: p = {}", outcome.p_value);
}

#[test]
fn scaled_variable_is_calibrated() {
    // 3·X + 1 for X ~ N(0,1) must match N(1, 3).
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let y = &x * 3.0 + 1.0;
    let analytic = Gaussian::new(1.0, 3.0).unwrap();
    let mut sampler = Sampler::seeded(16);
    let outcome = ks_test(&sampler.samples(&y, N), |v| analytic.cdf(v)).unwrap();
    assert!(outcome.fits(ALPHA), "affine: p = {}", outcome.p_value);
}

#[test]
fn gps_distance_is_rayleigh_calibrated() {
    // End-to-end: the distance from the reported point of a GPS posterior
    // must be exactly the paper's Rayleigh(ε/√ln400).
    use uncertain_suite::gps::{GeoCoordinate, GpsReading};
    let fix = GpsReading::new(GeoCoordinate::new(47.6, -122.3), 6.0).unwrap();
    let location = fix.location();
    let radial = Rayleigh::from_gps_accuracy(6.0).unwrap();
    let mut sampler = Sampler::seeded(17);
    let dists: Vec<f64> = (0..N)
        .map(|_| fix.center().distance_meters(&sampler.sample(&location)))
        .collect();
    let outcome = ks_test(&dists, |x| radial.cdf(x)).unwrap();
    assert!(outcome.fits(ALPHA), "gps radial: p = {}", outcome.p_value);
}
