//! Failure-injection tests: how the suite behaves when computations go
//! wrong — non-finite samples, impossible evidence, invalid configuration,
//! degenerate workloads. A library for uncertain data must itself fail
//! predictably.

// This suite pins the recorded seed streams, so it deliberately keeps
// driving the deprecated `Sampler`-era surface.
#![allow(deprecated)]

use uncertain_suite::dist::{Empirical, ParamError};
use uncertain_suite::stats::{StatsError, Summary};
use uncertain_suite::{EvalConfig, Sampler, Uncertain};

#[test]
fn division_by_zero_mass_surfaces_as_stats_error() {
    // A denominator with mass exactly at 0 produces infinities; stats_with
    // must refuse rather than return a garbage mean.
    let numerator = Uncertain::point(1.0);
    let denominator = Uncertain::point(0.0);
    let ratio = &numerator / &denominator;
    let mut s = Sampler::seeded(1);
    let result = ratio.stats_with(&mut s, 100);
    assert!(result.is_err(), "non-finite samples must not summarize");
}

#[test]
fn nan_producing_map_is_caught_by_summary() {
    let x = Uncertain::normal(0.0, 1.0).unwrap();
    let sqrt = x.sqrt(); // NaN for roughly half the samples
    let mut s = Sampler::seeded(2);
    assert!(sqrt.stats_with(&mut s, 200).is_err());
    // The calibrated alternative: clamp the domain first.
    let safe = x.abs().sqrt();
    assert!(safe.stats_with(&mut s, 200).is_ok());
}

#[test]
fn comparisons_with_nan_are_well_defined_booleans() {
    // NaN compares false against everything; the Bernoulli is still a
    // legal bool stream and evidence evaluates to 0.
    let nan = Uncertain::point(f64::NAN);
    let gt = nan.gt(0.0);
    let lt = nan.lt(0.0);
    let mut s = Sampler::seeded(3);
    assert_eq!(gt.probability_with(&mut s, 100), 0.0);
    assert_eq!(lt.probability_with(&mut s, 100), 0.0);
}

#[test]
#[should_panic(expected = "condition_on")]
fn impossible_hard_evidence_panics_with_context() {
    let x = Uncertain::uniform(0.0, 1.0).unwrap();
    let impossible = x.condition_on(|v| *v > 2.0, 16);
    let mut s = Sampler::seeded(4);
    let _ = s.sample(&impossible);
}

#[test]
fn invalid_distribution_parameters_are_errors_not_panics() {
    assert!(Uncertain::normal(0.0, -1.0).is_err());
    assert!(Uncertain::normal(f64::NAN, 1.0).is_err());
    assert!(Uncertain::uniform(1.0, 1.0).is_err());
    assert!(Uncertain::bernoulli(1.5).is_err());
    assert!(Uncertain::rayleigh(0.0).is_err());
    // Error types are real std errors with readable messages.
    let err: ParamError = Uncertain::normal(0.0, -1.0).unwrap_err();
    assert!(err.to_string().contains("std_dev"));
}

#[test]
fn empty_data_is_an_error_everywhere() {
    assert!(Summary::from_slice(&[]).is_err());
    assert!(Empirical::<f64>::new(vec![]).is_err());
    let err: StatsError = Summary::from_slice(&[]).unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
#[should_panic(expected = "invalid conditional threshold")]
fn out_of_range_threshold_panics_at_the_conditional() {
    let b = Uncertain::bernoulli(0.5).unwrap();
    let mut s = Sampler::seeded(5);
    let _ = b.evaluate(0.0, &mut s, &EvalConfig::default());
}

#[test]
fn degenerate_point_mass_conditionals_decide_instantly() {
    // Pr is exactly 0 or 1: the SPRT crosses a boundary on the first batch.
    let always = Uncertain::point(true);
    let never = Uncertain::point(false);
    let mut s = Sampler::seeded(6);
    let o1 = always.evaluate(0.5, &mut s, &EvalConfig::default());
    let o2 = never.evaluate(0.5, &mut s, &EvalConfig::default());
    assert!(o1.is_true() && o1.samples <= 20);
    assert!(o2.is_false() && o2.samples <= 20);
}

#[test]
fn weight_by_tolerates_pathological_weight_functions() {
    let x = Uncertain::uniform(0.0, 1.0).unwrap();
    let mut s = Sampler::seeded(7);
    // NaN weights are treated as zero (with fallback), not propagated.
    let nan_weights = x.weight_by(|_| f64::NAN);
    let v = s.sample(&nan_weights);
    assert!((0.0..1.0).contains(&v));
    // Infinite weights are treated as zero too (not a crash).
    let inf_weights = x.weight_by(|_| f64::INFINITY);
    let v = s.sample(&inf_weights);
    assert!((0.0..1.0).contains(&v));
    // Negative weights clamp to zero: only the positive-weight region
    // survives.
    let signed = x.weight_by(|v| if *v > 0.5 { 1.0 } else { -5.0 });
    for _ in 0..100 {
        assert!(s.sample(&signed) > 0.5);
    }
}

#[test]
fn extreme_magnitudes_flow_through_the_network() {
    let tiny = Uncertain::normal(1e-300, 1e-301).unwrap();
    let huge = Uncertain::normal(1e300, 1e299).unwrap();
    let mut s = Sampler::seeded(8);
    assert!(s.sample(&tiny).is_finite());
    assert!(s.sample(&huge).is_finite());
    // Product overflows to infinity — detected by stats, not hidden.
    let product = &huge * &huge;
    assert!(product.stats_with(&mut s, 50).is_err());
}

#[test]
fn sampler_state_is_isolated_between_variables() {
    // Evaluating one network never perturbs the distribution of another:
    // interleaved sampling matches isolated sampling statistically.
    let a = Uncertain::normal(0.0, 1.0).unwrap();
    let b = Uncertain::uniform(0.0, 1.0).unwrap();
    let mut s = Sampler::seeded(9);
    let mut a_sum = 0.0;
    for i in 0..4000 {
        if i % 2 == 0 {
            a_sum += s.sample(&a);
        } else {
            let _ = s.sample(&b);
        }
    }
    assert!((a_sum / 2000.0).abs() < 0.07);
}
