//! Property-based tests (proptest) that compiled evaluation plans agree
//! with the tree-walk interpreter, and that parallel batch sampling is
//! deterministic regardless of worker count.

// This suite pins the recorded seed streams, so it deliberately keeps
// driving the deprecated `Sampler`-era surface.
#![allow(deprecated)]

use proptest::prelude::*;
use uncertain_suite::{Evaluator, ParSampler, Sampler, Uncertain};

/// An arbitrary expression shape mixing shared leaves, scalar ops, and a
/// nonlinearity — the shapes a compiled plan must reproduce exactly.
fn build_expr(mean: f64, sd: f64, n_ops: usize) -> Uncertain<f64> {
    let x = Uncertain::normal(mean, sd).unwrap();
    let mut expr = x.clone();
    for i in 0..n_ops {
        expr = match i % 4 {
            0 => expr + &x,
            1 => expr * 0.5,
            2 => expr - Uncertain::uniform(0.0, 1.0).unwrap(),
            _ => expr.map("tanh", f64::tanh),
        };
    }
    expr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The compiled plan preserves shared dependence: x − x ≡ 0 for every
    /// joint sample of every leaf distribution.
    #[test]
    fn plan_keeps_ssa_identity(mean in -100.0_f64..100.0, sd in 0.1_f64..50.0, seed in 0u64..1000) {
        let x = Uncertain::normal(mean, sd).unwrap();
        let zero = &x - &x;
        let mut eval = Evaluator::new(&zero, seed);
        for _ in 0..20 {
            prop_assert_eq!(eval.sample(), 0.0);
        }
        let batch = ParSampler::with_threads(&zero, seed, 4).sample_batch(64);
        prop_assert!(batch.iter().all(|&v| v == 0.0));
    }

    /// Plan and tree-walk draw bitwise-identical sample streams for the
    /// same sampler seed, across arbitrary expression shapes.
    #[test]
    fn plan_matches_treewalk_stream(
        mean in -10.0_f64..10.0,
        sd in 0.1_f64..5.0,
        n_ops in 0usize..12,
        seed in 0u64..1000,
    ) {
        let expr = build_expr(mean, sd, n_ops);
        let mut tree = Sampler::seeded(seed);
        let mut planned = Sampler::seeded(seed);
        // `samples` goes through the tree-walk; `expected_value_with` goes
        // through the plan — both consume one sampler seed per draw.
        let walked = tree.samples(&expr, 16);
        let mean_walked = walked.iter().sum::<f64>() / 16.0;
        let mean_planned = expr.expected_value_with(&mut planned, 16);
        prop_assert_eq!(mean_walked, mean_planned);
    }

    /// Encapsulation decorrelates under the plan exactly as it does under
    /// the interpreter: x.encapsulate() − x is almost never zero.
    #[test]
    fn plan_keeps_encapsulation_independent(seed in 0u64..500) {
        let x = Uncertain::normal(0.0, 10.0).unwrap();
        let diff = x.encapsulate() - &x;
        let mut eval = Evaluator::new(&diff, seed);
        let nonzero = (0..50).filter(|_| eval.sample() != 0.0).count();
        prop_assert!(nonzero >= 48, "only {nonzero}/50 nonzero");
    }

    /// A weight_by prior with constant weight stays a no-op when evaluated
    /// through a compiled plan (SIR resampling included in the plan).
    #[test]
    fn plan_constant_weight_is_noop(c in 0.1_f64..10.0, seed in 0u64..100) {
        let x = Uncertain::normal(5.0, 1.0).unwrap();
        let w = x.weight_by(move |_| c);
        let mut eval = Evaluator::new(&w, seed);
        let e = eval.expected_value(3000);
        prop_assert!((e - 5.0).abs() < 0.2, "e={e}");
    }

    /// Parallel batch sampling is bitwise identical for 1, 2, and 8 worker
    /// threads, for any batch size and seed.
    #[test]
    fn par_sampler_thread_count_invariant(
        seed in 0u64..1000,
        n in 1usize..200,
        n_ops in 0usize..8,
    ) {
        let expr = build_expr(0.0, 1.0, n_ops);
        let reference = ParSampler::with_threads(&expr, seed, 1).sample_batch(n);
        for threads in [2, 8] {
            let batch = ParSampler::with_threads(&expr, seed, threads).sample_batch(n);
            prop_assert_eq!(&reference, &batch, "threads={}", threads);
        }
    }

    /// Batch boundaries don't move the stream: drawing n then m samples
    /// equals drawing n + m at once, even with different thread counts.
    #[test]
    fn par_sampler_batch_split_invariant(
        seed in 0u64..1000,
        n in 0usize..60,
        m in 1usize..60,
    ) {
        let x = Uncertain::uniform(-1.0, 1.0).unwrap();
        let expr = &x * &x;
        let whole = ParSampler::with_threads(&expr, seed, 3).sample_batch(n + m);
        let mut split = ParSampler::with_threads(&expr, seed, 5);
        let mut joined = split.sample_batch(n);
        joined.extend(split.sample_batch(m));
        prop_assert_eq!(whole, joined);
    }
}
