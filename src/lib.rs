//! Umbrella crate for the **Uncertain\<T\>** reproduction (Bornholt,
//! Mytkowicz, McKinley — ASPLOS 2014).
//!
//! Re-exports the whole suite under one roof and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! * `core` ([`uncertain_core`]) — the `Uncertain<T>` type itself,
//! * `dist` ([`uncertain_dist`]) — the distribution substrate,
//! * `stats` ([`uncertain_stats`]) — hypothesis tests and statistics,
//! * `gps` ([`uncertain_gps`]) — the GPS-Walking case study (§5.1),
//! * `life` ([`uncertain_life`]) — the SensorLife case study (§5.2),
//! * `neural` ([`uncertain_neural`]) — the Parakeet case study (§5.3),
//! * `obs` ([`uncertain_obs`]) — decision traces, metrics, exporters,
//! * `serve` ([`uncertain_serve`]) — the sharded evaluation service.
//!
//! # Examples
//!
//! ```
//! use uncertain_suite::{Session, Uncertain};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let noisy = Uncertain::normal(3.0, 1.0)?;
//! let mut session = Session::seeded(1);
//! assert!(noisy.gt(2.0).is_probable_in(&mut session));
//! # Ok(())
//! # }
//! ```

#[cfg(feature = "legacy-sampler")]
pub use uncertain_core::Sampler;
pub use uncertain_core::{
    BoolLaw, CacheStats, ConfigError, DecisionTrace, Error, EvalConfig, EvalConfigBuilder,
    EvalStrategy, Evaluator, ExactMethod, HypothesisOutcome, InconclusiveError, IntoUncertain,
    NetworkView, NodeId, NodeMeta, NotAnalyticError, ParSampler, Plan, Profile, Provenance,
    Recorder, ScalarLaw, ServeError, Session, StatsOutcome, StoppingReason, TracePoint, Uncertain,
    Value, DEFAULT_CACHE_CAPACITY,
};
pub use uncertain_obs::{PromWriter, TraceLog};
pub use uncertain_serve::{
    ChannelTransport, Listener, NetMetrics, Pending, Request, RequestKind, Response, ServeClient,
    ServeConfig, ServeConfigBuilder, ServeMetrics, Service, TcpTransport, Transport,
};

pub use uncertain_core as core;
pub use uncertain_dist as dist;
pub use uncertain_gps as gps;
pub use uncertain_life as life;
pub use uncertain_neural as neural;
pub use uncertain_obs as obs;
pub use uncertain_serve as serve;
pub use uncertain_stats as stats;
